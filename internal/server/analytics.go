package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"reflect"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/analytics"
	"repro/internal/navigation"
)

// DefaultAdaptInterval is how often the background adaptation loop
// recomputes access structures from recorded traffic.
const DefaultAdaptInterval = 30 * time.Second

// WithAnalytics installs a trail recorder: every navigation hop a
// request performs (page-to-page moves within a context, entries into
// one) is counted by rec, at near-zero request cost. The recorder feeds
// Adapt and the /stats endpoint; without one both are disabled.
func WithAnalytics(rec *analytics.Recorder) Option {
	return func(s *Server) { s.rec = rec }
}

// WithDeriveConfig tunes the derivation layer Adapt uses (sample
// floors, landmark promotion threshold, circular tours). Zero fields
// keep the analytics package defaults.
func WithDeriveConfig(cfg analytics.Config) Option {
	return func(s *Server) { s.deriveCfg = cfg }
}

// adaptState is the adaptation loop's bookkeeping, split from Server's
// hot fields: the cycle lock, the completed-cycle generation and the
// derived-structure gauge.
type adaptState struct {
	mu sync.Mutex

	generation atomic.Uint64
	derived    atomic.Uint64
}

// Adapt runs one adaptation cycle: snapshot the recorder, fold the
// hops into a transition graph, derive adaptive tours, and swap every
// family whose derived structure changed through one batched
// SetAccessStructures — PR 3's rebuild diff then invalidates exactly
// the contexts whose edges moved, rotating their ETags and no others.
// It returns how many per-context structures are currently derived.
// Cycles are serialized; concurrent callers queue behind the lock.
//
//repro:plane(control)
func (s *Server) Adapt() (int, error) {
	if s.rec == nil {
		return 0, errors.New("server: analytics recorder not configured")
	}
	// The whole cycle — snapshot included — runs under the lock: were
	// the snapshot taken outside it, a slow caller could install tours
	// derived from an older view over a fresher cycle's result. Nothing
	// here is on the request path, so holding the lock through the
	// derivation costs no one a page.
	s.adapt.mu.Lock()
	defer s.adapt.mu.Unlock()
	start := time.Now()
	rm := s.app.Resolved()
	g := analytics.BuildGraph(s.rec.Snapshot())
	tours := analytics.Derive(g, analytics.Infos(rm), s.deriveCfg)
	plans := 0
	for _, t := range tours {
		plans += len(t.Plans)
	}

	swaps := make(map[string]navigation.AccessStructure, len(tours))
	for family, t := range tours {
		// A steady-state cycle derives the tour the family is already
		// serving; skipping the swap skips the whole rebuild, so an
		// idle interval costs a snapshot and a DeepEqual, not a
		// re-weave. The comparison is against the *live* structure,
		// not a remembered one: an operator who swapped the family
		// back by hand gets re-adapted on the next cycle rather than
		// silently ignored.
		if cur, ok := familyAccess(rm, family).(*navigation.AdaptiveTour); ok && reflect.DeepEqual(cur, t) {
			continue
		}
		swaps[family] = t
	}
	if len(swaps) > 0 {
		if _, err := s.app.SetAccessStructures(swaps); err != nil {
			return 0, err
		}
	}
	s.adapt.generation.Add(1)
	s.adapt.derived.Store(uint64(plans))
	adaptCycleDuration.Observe(time.Since(start))
	adaptCycles.Inc()
	return plans, nil
}

// familyAccess returns the access structure the family's resolved
// contexts currently serve (nil when none resolved).
func familyAccess(rm *navigation.ResolvedModel, family string) navigation.AccessStructure {
	for _, rc := range rm.Contexts {
		if rc.Def.Name == family {
			return rc.Def.Access
		}
	}
	return nil
}

// AdaptStats reports the adaptation loop's progress: how many cycles
// have completed and how many per-context structures the last cycle
// derived.
func (s *Server) AdaptStats() (generation, derived uint64) {
	return s.adapt.generation.Load(), s.adapt.derived.Load()
}

// StartAdaptation begins recomputing access structures from recorded
// traffic every interval in a background goroutine, skipping cycles
// until at least minHops hops have been recorded (the min-sample knob —
// adapting to the first three clicks of the day would thrash the
// linkbase). It returns an idempotent stop function; cmd/navserve ties
// it to HTTP shutdown like the session janitor. A cycle that fails
// (a concurrent model mutation, say) is skipped, not fatal: the next
// tick retries.
func (s *Server) StartAdaptation(interval time.Duration, minHops uint64) (stop func()) {
	done := make(chan struct{})
	ticker := time.NewTicker(interval)
	go func() {
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				if s.rec == nil || s.rec.Stats().Recorded < minHops {
					continue
				}
				_, _ = s.Adapt()
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}

// recordHop counts one observed navigation step: a move between two
// nodes of one context, or an entry when the visitor arrived from
// outside the context (a fresh session, another context, a direct
// link). Reloads and revalidations — the same node through the same
// context — are not traversals and are not counted.
//
//repro:hotpath
func (s *Server) recordHop(prev *navigation.ResolvedContext, prevNode, ctx, node string) {
	if prev != nil && prev.Name == ctx {
		if prevNode == node {
			return
		}
		s.rec.Record(ctx, prevNode, node)
		return
	}
	s.rec.Record(ctx, analytics.EntryFrom, node)
}

// statsContext is the wire form of one context's traffic summary.
type statsContext struct {
	Hops     uint64                 `json:"hops"`
	TopNodes []analytics.NodeCount  `json:"top_nodes"`
	TopEdges []analytics.Transition `json:"top_edges"`
	Entries  []analytics.NodeCount  `json:"top_entries,omitempty"`
}

// serveStats answers GET /stats: the recorder counters, the adaptation
// loop's progress, and a per-context traffic summary (top nodes, edges
// and entries) aggregated from the live recorder — the operator's view
// of what the adaptation layer is learning.
//
//repro:nostore
func (s *Server) serveStats(w http.ResponseWriter) {
	// Live counters: an intermediary caching them would freeze the
	// operator's view of what the adaptation layer is learning.
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("Content-Type", "application/json")
	if s.rec == nil {
		_ = json.NewEncoder(w).Encode(struct {
			Analytics bool `json:"analytics"`
		}{false})
		return
	}
	const topK = 5
	g := analytics.BuildGraph(s.rec.Snapshot())
	contexts := make(map[string]statsContext, len(g.Contexts))
	for name, cg := range g.Contexts {
		contexts[name] = statsContext{
			Hops:     cg.Hops,
			TopNodes: cg.TopNodes(topK),
			TopEdges: cg.TopEdges(topK),
			Entries:  cg.TopEntries(topK),
		}
	}
	gen, derived := s.AdaptStats()
	payload := struct {
		Analytics         bool                    `json:"analytics"`
		SampleRate        int                     `json:"sample_rate"`
		Stats             analytics.Stats         `json:"recorder"`
		AdaptGeneration   uint64                  `json:"adapt_generation"`
		DerivedStructures uint64                  `json:"derived_structures"`
		Contexts          map[string]statsContext `json:"contexts"`
	}{
		Analytics:         true,
		SampleRate:        s.rec.SampleRate(),
		Stats:             s.rec.Stats(),
		AdaptGeneration:   gen,
		DerivedStructures: derived,
		Contexts:          contexts,
	}
	_ = json.NewEncoder(w).Encode(payload)
}
