package server

import (
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/api"
)

// sampleRe matches one Prometheus sample line: name, optional label
// set, value. The value is validated separately with ParseFloat so
// "+Inf" and scientific notation both pass through one code path.
var sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{(?:[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\["\\n])*",?)*\})? (\S+)$`)

// labelRe pulls individual label pairs out of a matched label set.
var labelRe = regexp.MustCompile(`([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\["\\n])*)"`)

// scrape fetches /metrics and returns the exposition body.
func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// TestMetricsExpositionRoundTrip drives real traffic through every
// route class, scrapes /metrics, and validates that every emitted line
// parses as Prometheus text format 0.0.4 — the round-trip guarantee a
// scraper depends on. It also checks internal consistency: every
// histogram's +Inf bucket equals its _count, and every required metric
// family is present with the right type.
func TestMetricsExpositionRoundTrip(t *testing.T) {
	_, ts := apiTestServer(t, WithAPIToken(testToken))

	// One of everything: page hit+miss, sitemap, 404, 304, doc fetch.
	tag := firstGet(t, ts.URL+"/ByAuthor/picasso/guitar.html")
	firstGet(t, ts.URL+"/ByAuthor/picasso/guitar.html")
	if resp := condGet(t, ts.URL+"/ByAuthor/picasso/guitar.html", tag); resp.StatusCode != http.StatusNotModified {
		t.Fatalf("revalidation = %d, want 304", resp.StatusCode)
	}
	if resp, err := http.Get(ts.URL + "/nowhere.html"); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("miss route: %v %v", resp.StatusCode, err)
	}
	if resp, err := http.Get(ts.URL + "/"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("sitemap: %v %v", resp.StatusCode, err)
	}

	text := scrape(t, ts.URL)

	types := map[string]string{}    // family -> declared type
	samples := map[string]float64{} // full series -> value
	counts := map[string]float64{}  // histogram _count series -> value
	infs := map[string]float64{}    // histogram +Inf bucket -> value
	var current string
	for i, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" {
			t.Errorf("line %d: empty line in exposition", i+1)
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 4 || parts[3] == "" {
				t.Errorf("line %d: malformed HELP: %q", i+1, line)
			}
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) != 4 {
				t.Errorf("line %d: malformed TYPE: %q", i+1, line)
				continue
			}
			switch parts[3] {
			case "counter", "gauge", "histogram":
			default:
				t.Errorf("line %d: unknown metric type %q", i+1, parts[3])
			}
			if _, dup := types[parts[2]]; dup {
				t.Errorf("line %d: family %s declared twice", i+1, parts[2])
			}
			types[parts[2]] = parts[3]
			current = parts[2]
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("line %d: does not parse as a sample: %q", i+1, line)
			continue
		}
		name, labels, value := m[1], m[2], m[3]
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			t.Errorf("line %d: bad value %q: %v", i+1, value, err)
		}
		if v < 0 {
			t.Errorf("line %d: negative sample %q", i+1, line)
		}
		samples[name+labels] = v
		// Samples must belong to the family last declared — the renderer
		// groups series under their TYPE header.
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if base != current && name != current {
			t.Errorf("line %d: sample %s outside its family block (current %s)", i+1, name, current)
		}
		// Collect histogram consistency inputs, keyed by the non-le
		// labels re-serialized in order.
		if strings.HasSuffix(name, "_count") && types[base] == "histogram" {
			counts[base+labels] = v
		}
		if strings.HasSuffix(name, "_bucket") {
			pairs := labelRe.FindAllStringSubmatch(labels, -1)
			var le string
			var rest []string
			for _, p := range pairs {
				if p[1] == "le" {
					le = p[2]
					continue
				}
				rest = append(rest, p[1]+`="`+p[2]+`"`)
			}
			if le == "+Inf" {
				key := base
				if len(rest) > 0 {
					key += "{" + strings.Join(rest, ",") + "}"
				}
				infs[key] = v
			}
		}
	}

	for key, inf := range infs {
		if counts[key] != inf {
			t.Errorf("histogram %s: +Inf bucket %v != _count %v", key, inf, counts[key])
		}
	}

	want := map[string]string{
		"navserve_http_requests_total":           "counter",
		"navserve_http_not_modified_total":       "counter",
		"navserve_http_request_duration_seconds": "histogram",
		"navcore_page_cache_hits_total":          "counter",
		"navcore_page_cache_misses_total":        "counter",
		"navcore_rebuild_duration_seconds":       "histogram",
		"navcore_rebuilds_total":                 "counter",
		"navserve_flush_queue_depth":             "gauge",
		"navserve_cached_pages":                  "gauge",
		"navserve_uptime_seconds":                "gauge",
		"navserve_goroutines":                    "gauge",
		"navserve_heap_bytes":                    "gauge",
	}
	for family, typ := range want {
		if types[family] != typ {
			t.Errorf("family %s: type %q, want %q", family, types[family], typ)
		}
	}

	// The traffic driven above must be visible with its route and status
	// class — and the revalidation in the 304 split. (The registry is
	// process-global, so other tests may have added more; ≥ the traffic
	// this test drove is the invariant.)
	for series, atLeast := range map[string]float64{
		`navserve_http_requests_total{route="page",code="2xx"}`:    2,
		`navserve_http_requests_total{route="page",code="4xx"}`:    1,
		`navserve_http_requests_total{route="sitemap",code="2xx"}`: 1,
		`navserve_http_not_modified_total{route="page"}`:           1,
		`navcore_page_cache_hits_total`:                            1,
		`navcore_page_cache_misses_total`:                          1,
	} {
		if samples[series] < atLeast {
			t.Errorf("series %s = %v, want >= %v", series, samples[series], atLeast)
		}
	}
}

// TestMetricsEndpointContract: /metrics is operational surface — never
// cached, correctly content-typed, bearer-exempt like /healthz, and
// GET/HEAD only.
func TestMetricsEndpointContract(t *testing.T) {
	_, ts := apiTestServer(t, WithAPIToken(testToken))

	resp, err := http.Get(ts.URL + "/metrics") // note: no bearer token
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tokenless GET /metrics = %d, want 200 (bearer-exempt)", resp.StatusCode)
	}
	if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
		t.Errorf("Cache-Control = %q, want no-store", cc)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("Content-Type = %q", ct)
	}
	head, err := http.Head(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	head.Body.Close()
	if head.StatusCode != http.StatusOK {
		t.Errorf("HEAD /metrics = %d, want 200", head.StatusCode)
	}
}

// TestOperationalMethodNotAllowed: the operational endpoints answer
// non-GET/HEAD the way the control plane contract does — 405, an Allow
// header, and a structured JSON error body, never a cached one.
func TestOperationalMethodNotAllowed(t *testing.T) {
	_, ts := apiTestServer(t, WithAPIToken(testToken))
	for _, path := range []string{"/healthz", "/stats", "/metrics"} {
		resp := apiDo(t, http.MethodPost, ts.URL+path, "", "")
		if resp.Header.Get("Allow") != "GET, HEAD" {
			t.Errorf("POST %s Allow = %q, want GET, HEAD", path, resp.Header.Get("Allow"))
		}
		if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
			t.Errorf("POST %s Cache-Control = %q, want no-store", path, cc)
		}
		apiErr := wantAPIError(t, resp, http.StatusMethodNotAllowed)
		if !strings.Contains(apiErr.Message, path) {
			t.Errorf("POST %s error message %q does not name the path", path, apiErr.Message)
		}
	}
	// Ordinary serving routes keep their plain-text refusal: a museum
	// page is not API surface and should not start speaking JSON.
	resp := apiDo(t, http.MethodPost, ts.URL+"/ByAuthor/picasso/guitar.html", "", "")
	if resp.StatusCode != http.StatusMethodNotAllowed || resp.Header.Get("Allow") != "GET, HEAD" {
		t.Errorf("POST page = %d Allow=%q", resp.StatusCode, resp.Header.Get("Allow"))
	}
	if strings.HasPrefix(resp.Header.Get("Content-Type"), "application/json") {
		t.Errorf("page 405 is JSON; want plain text for non-operational routes")
	}
}

// TestHealthzRuntimeFields: /healthz carries the process vitals a load
// balancer or a human checks first.
func TestHealthzRuntimeFields(t *testing.T) {
	_, ts := testServer(t)
	time.Sleep(2 * time.Millisecond) // uptime must be observably > 0
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health struct {
		UptimeSeconds float64 `json:"uptime_seconds"`
		Goroutines    int     `json:"goroutines"`
		HeapBytes     uint64  `json:"heap_bytes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.UptimeSeconds <= 0 {
		t.Errorf("uptime_seconds = %v, want > 0", health.UptimeSeconds)
	}
	if health.Goroutines <= 0 {
		t.Errorf("goroutines = %d, want > 0", health.Goroutines)
	}
	if health.HeapBytes == 0 {
		t.Errorf("heap_bytes = 0, want live heap")
	}
}

// TestMutationEventBlastRadius is the tracing acceptance scenario: a
// structure swap's event must report exactly the family-local blast
// radius — the two cached ByAuthor pages drop and are counted, the
// ByMovement page survives with its ETag intact.
func TestMutationEventBlastRadius(t *testing.T) {
	_, ts := apiTestServer(t, WithAPIToken(testToken))

	// Warm two ByAuthor pages and one ByMovement page into the cache.
	firstGet(t, ts.URL+"/ByAuthor/picasso/guitar.html")
	firstGet(t, ts.URL+"/ByAuthor/picasso/guernica.html")
	movementTag := firstGet(t, ts.URL+"/ByMovement/cubism/guitar.html")

	resp := apiDo(t, http.MethodPut, ts.URL+api.BasePath+"/contexts/ByAuthor/structure",
		testToken, `{"kind":"guided-tour"}`)
	var mut api.MutationResult
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("structure swap = %d", resp.StatusCode)
	}
	decodeBody(t, resp, &mut)

	resp = apiDo(t, http.MethodGet, ts.URL+api.BasePath+"/events?limit=1", testToken, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /events = %d", resp.StatusCode)
	}
	var events api.EventsResponse
	decodeBody(t, resp, &events)
	if len(events.Events) != 1 {
		t.Fatalf("events = %+v, want exactly 1 with limit=1", events)
	}
	e := events.Events[0]
	if e.Kind != "structure-swap" || e.Target != "ByAuthor" {
		t.Errorf("event = %+v, want structure-swap of ByAuthor", e)
	}
	if e.PagesInvalidated != 2 {
		t.Errorf("event pages_invalidated = %d, want 2 (the warmed ByAuthor pages)", e.PagesInvalidated)
	}
	if e.PagesInvalidated != mut.DroppedPages {
		t.Errorf("event blast radius %d disagrees with the mutation report %d",
			e.PagesInvalidated, mut.DroppedPages)
	}
	if e.Verdict != "local" {
		t.Errorf("event verdict = %q, want local (family-scoped diff)", e.Verdict)
	}
	if e.CacheGeneration != mut.CacheGeneration {
		t.Errorf("event generation %d != mutation generation %d", e.CacheGeneration, mut.CacheGeneration)
	}
	if e.DurationSeconds <= 0 {
		t.Errorf("event duration_seconds = %v, want > 0", e.DurationSeconds)
	}

	// The uninvolved family's page survived the swap.
	if resp := condGet(t, ts.URL+"/ByMovement/cubism/guitar.html", movementTag); resp.StatusCode != http.StatusNotModified {
		t.Errorf("ByMovement revalidation after ByAuthor swap = %d, want 304", resp.StatusCode)
	}

	// A bad limit is a structured 400, not a silent default.
	resp = apiDo(t, http.MethodGet, ts.URL+api.BasePath+"/events?limit=zero", testToken, "")
	wantAPIError(t, resp, http.StatusBadRequest)
}

// BenchmarkObserveRequest prices the full per-request metrics hook:
// route counter, status split, latency histogram.
func BenchmarkObserveRequest(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		observeRequest(routePage, http.StatusOK, 1200*time.Nanosecond)
	}
}
