package server

import (
	"net/http"
	"strings"
	"testing"
)

// noRedirectClient returns a cookie-jarred client that surfaces redirects
// instead of following them, so tests can assert Location headers.
func noRedirectClient() *http.Client {
	return &http.Client{
		Jar: newCookieJar(),
		CheckRedirect: func(*http.Request, []*http.Request) error {
			return http.ErrUseLastResponse
		},
	}
}

func getRaw(t *testing.T, client *http.Client, url string) *http.Response {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

// TestTraversalNextFollowsContext drives /go/next and checks the redirect
// target depends on the entry context — §2 over HTTP.
func TestTraversalNextFollowsContext(t *testing.T) {
	_, ts := testServer(t)

	// Visitor A reaches guitar via the author.
	alice := noRedirectClient()
	getRaw(t, alice, ts.URL+"/ByAuthor/picasso/guitar.html")
	resp := getRaw(t, alice, ts.URL+"/go/next")
	if resp.StatusCode != http.StatusSeeOther {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != "/ByAuthor/picasso/guernica.html" {
		t.Errorf("author Next -> %s, want guernica", loc)
	}

	// Visitor B reaches guitar via the movement (title order in cubism:
	// Guitar, Les Demoiselles d'Avignon) — Next differs.
	bob := noRedirectClient()
	getRaw(t, bob, ts.URL+"/ByMovement/cubism/guitar.html")
	resp = getRaw(t, bob, ts.URL+"/go/next")
	if loc := resp.Header.Get("Location"); loc != "/ByMovement/cubism/avignon.html" {
		t.Errorf("movement Next -> %s, want avignon", loc)
	}
}

func TestTraversalUpAndSelect(t *testing.T) {
	_, ts := testServer(t)
	client := noRedirectClient()
	getRaw(t, client, ts.URL+"/ByAuthor/picasso/guitar.html")

	resp := getRaw(t, client, ts.URL+"/go/up")
	if loc := resp.Header.Get("Location"); loc != "/ByAuthor/picasso/index.html" {
		t.Errorf("up -> %s", loc)
	}
	// Actually visit the hub (the redirect target), then select.
	getRaw(t, client, ts.URL+"/ByAuthor/picasso/index.html")
	resp = getRaw(t, client, ts.URL+"/go/select?node=guernica")
	if loc := resp.Header.Get("Location"); loc != "/ByAuthor/picasso/guernica.html" {
		t.Errorf("select -> %s", loc)
	}
}

func TestTraversalSwitchContext(t *testing.T) {
	_, ts := testServer(t)
	client := noRedirectClient()
	getRaw(t, client, ts.URL+"/ByAuthor/picasso/guernica.html")
	resp := getRaw(t, client, ts.URL+"/go/switch?context=ByMovement:surrealism")
	if loc := resp.Header.Get("Location"); loc != "/ByMovement/surrealism/guernica.html" {
		t.Errorf("switch -> %s", loc)
	}
	// Now in surrealism; visit the target, then Next leads to memory.
	getRaw(t, client, ts.URL+"/ByMovement/surrealism/guernica.html")
	resp = getRaw(t, client, ts.URL+"/go/next")
	if loc := resp.Header.Get("Location"); loc != "/ByMovement/surrealism/memory.html" {
		t.Errorf("post-switch Next -> %s", loc)
	}
}

func TestTraversalErrors(t *testing.T) {
	_, ts := testServer(t)

	// Without a current context, traversal conflicts.
	fresh := noRedirectClient()
	if resp := getRaw(t, fresh, ts.URL+"/go/next"); resp.StatusCode != http.StatusConflict {
		t.Errorf("next without context = %d, want 409", resp.StatusCode)
	}

	client := noRedirectClient()
	getRaw(t, client, ts.URL+"/ByAuthor/picasso/guernica.html") // end of tour
	if resp := getRaw(t, client, ts.URL+"/go/next"); resp.StatusCode != http.StatusConflict {
		t.Errorf("next at tour end = %d, want 409", resp.StatusCode)
	}
	if resp := getRaw(t, client, ts.URL+"/go/teleport"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown action = %d, want 404", resp.StatusCode)
	}
	if resp := getRaw(t, client, ts.URL+"/go/select"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("select without node = %d, want 400", resp.StatusCode)
	}
	if resp := getRaw(t, client, ts.URL+"/go/switch"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("switch without context = %d, want 400", resp.StatusCode)
	}
	// Switching to a context that does not contain the node conflicts.
	if resp := getRaw(t, client, ts.URL+"/go/switch?context=ByMovement:cubism"); resp.StatusCode != http.StatusConflict {
		t.Errorf("invalid switch = %d, want 409", resp.StatusCode)
	}
}

// TestTraversalRedirectChainWalk follows a whole tour via redirects.
func TestTraversalRedirectChainWalk(t *testing.T) {
	_, ts := testServer(t)
	client := &http.Client{Jar: newCookieJar()} // follows redirects
	// Start at the first painting of the author tour.
	if code, _ := get(t, client, ts.URL+"/ByAuthor/picasso/avignon.html"); code != http.StatusOK {
		t.Fatal("entry failed")
	}
	// Two Next hops land on guernica's page (redirects followed).
	if code, body := get(t, client, ts.URL+"/go/next"); code != http.StatusOK || !strings.Contains(body, "<h1>Guitar</h1>") {
		t.Errorf("first next: %d", code)
	}
	if code, body := get(t, client, ts.URL+"/go/next"); code != http.StatusOK || !strings.Contains(body, "<h1>Guernica</h1>") {
		t.Errorf("second next: %d", code)
	}
}
