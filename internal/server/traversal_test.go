package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// noRedirectClient returns a cookie-jarred client that surfaces redirects
// instead of following them, so tests can assert Location headers.
func noRedirectClient() *http.Client {
	return &http.Client{
		Jar: newCookieJar(),
		CheckRedirect: func(*http.Request, []*http.Request) error {
			return http.ErrUseLastResponse
		},
	}
}

func getRaw(t *testing.T, client *http.Client, url string) *http.Response {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

// TestTraversalNextFollowsContext drives /go/next and checks the redirect
// target depends on the entry context — §2 over HTTP.
func TestTraversalNextFollowsContext(t *testing.T) {
	_, ts := testServer(t)

	// Visitor A reaches guitar via the author.
	alice := noRedirectClient()
	getRaw(t, alice, ts.URL+"/ByAuthor/picasso/guitar.html")
	resp := getRaw(t, alice, ts.URL+"/go/next")
	if resp.StatusCode != http.StatusSeeOther {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != "/ByAuthor/picasso/guernica.html" {
		t.Errorf("author Next -> %s, want guernica", loc)
	}

	// Visitor B reaches guitar via the movement (title order in cubism:
	// Guitar, Les Demoiselles d'Avignon) — Next differs.
	bob := noRedirectClient()
	getRaw(t, bob, ts.URL+"/ByMovement/cubism/guitar.html")
	resp = getRaw(t, bob, ts.URL+"/go/next")
	if loc := resp.Header.Get("Location"); loc != "/ByMovement/cubism/avignon.html" {
		t.Errorf("movement Next -> %s, want avignon", loc)
	}
}

func TestTraversalUpAndSelect(t *testing.T) {
	_, ts := testServer(t)
	client := noRedirectClient()
	getRaw(t, client, ts.URL+"/ByAuthor/picasso/guitar.html")

	resp := getRaw(t, client, ts.URL+"/go/up")
	if loc := resp.Header.Get("Location"); loc != "/ByAuthor/picasso/index.html" {
		t.Errorf("up -> %s", loc)
	}
	// Actually visit the hub (the redirect target), then select.
	getRaw(t, client, ts.URL+"/ByAuthor/picasso/index.html")
	resp = getRaw(t, client, ts.URL+"/go/select?node=guernica")
	if loc := resp.Header.Get("Location"); loc != "/ByAuthor/picasso/guernica.html" {
		t.Errorf("select -> %s", loc)
	}
}

func TestTraversalSwitchContext(t *testing.T) {
	_, ts := testServer(t)
	client := noRedirectClient()
	getRaw(t, client, ts.URL+"/ByAuthor/picasso/guernica.html")
	resp := getRaw(t, client, ts.URL+"/go/switch?context=ByMovement:surrealism")
	if loc := resp.Header.Get("Location"); loc != "/ByMovement/surrealism/guernica.html" {
		t.Errorf("switch -> %s", loc)
	}
	// Now in surrealism; visit the target, then Next leads to memory.
	getRaw(t, client, ts.URL+"/ByMovement/surrealism/guernica.html")
	resp = getRaw(t, client, ts.URL+"/go/next")
	if loc := resp.Header.Get("Location"); loc != "/ByMovement/surrealism/memory.html" {
		t.Errorf("post-switch Next -> %s", loc)
	}
}

func TestTraversalErrors(t *testing.T) {
	_, ts := testServer(t)

	// Without a current context, traversal conflicts.
	fresh := noRedirectClient()
	if resp := getRaw(t, fresh, ts.URL+"/go/next"); resp.StatusCode != http.StatusConflict {
		t.Errorf("next without context = %d, want 409", resp.StatusCode)
	}

	client := noRedirectClient()
	getRaw(t, client, ts.URL+"/ByAuthor/picasso/guernica.html") // end of tour
	if resp := getRaw(t, client, ts.URL+"/go/next"); resp.StatusCode != http.StatusConflict {
		t.Errorf("next at tour end = %d, want 409", resp.StatusCode)
	}
	if resp := getRaw(t, client, ts.URL+"/go/teleport"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown action = %d, want 404", resp.StatusCode)
	}
	if resp := getRaw(t, client, ts.URL+"/go/select"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("select without node = %d, want 400", resp.StatusCode)
	}
	if resp := getRaw(t, client, ts.URL+"/go/switch"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("switch without context = %d, want 400", resp.StatusCode)
	}
	// Switching to a context that does not contain the node conflicts.
	if resp := getRaw(t, client, ts.URL+"/go/switch?context=ByMovement:cubism"); resp.StatusCode != http.StatusConflict {
		t.Errorf("invalid switch = %d, want 409", resp.StatusCode)
	}
}

// TestTraversalBackForward drives /go/back and /go/forward: Back
// retraces the walk, Forward undoes the Back, and both bottom out with
// 409 at the ends of the history.
func TestTraversalBackForward(t *testing.T) {
	_, ts := testServer(t)
	client := noRedirectClient()
	getRaw(t, client, ts.URL+"/ByAuthor/picasso/avignon.html")
	getRaw(t, client, ts.URL+"/ByAuthor/picasso/guitar.html")
	getRaw(t, client, ts.URL+"/ByAuthor/picasso/guernica.html")

	resp := getRaw(t, client, ts.URL+"/go/back")
	if resp.StatusCode != http.StatusSeeOther {
		t.Fatalf("back status = %d", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != "/ByAuthor/picasso/guitar.html" {
		t.Errorf("back -> %s, want guitar", loc)
	}
	// Loading the redirect target is a reload at the cursor — the
	// forward history must survive it.
	getRaw(t, client, ts.URL+"/ByAuthor/picasso/guitar.html")
	resp = getRaw(t, client, ts.URL+"/go/back")
	if loc := resp.Header.Get("Location"); loc != "/ByAuthor/picasso/avignon.html" {
		t.Errorf("second back -> %s, want avignon", loc)
	}
	getRaw(t, client, ts.URL+"/ByAuthor/picasso/avignon.html")
	// At the start of the history a further Back conflicts.
	if resp := getRaw(t, client, ts.URL+"/go/back"); resp.StatusCode != http.StatusConflict {
		t.Errorf("back at history start = %d, want 409", resp.StatusCode)
	}
	// Forward retraces toward the tip.
	resp = getRaw(t, client, ts.URL+"/go/forward")
	if loc := resp.Header.Get("Location"); loc != "/ByAuthor/picasso/guitar.html" {
		t.Errorf("forward -> %s, want guitar", loc)
	}
	resp = getRaw(t, client, ts.URL+"/go/forward")
	if loc := resp.Header.Get("Location"); loc != "/ByAuthor/picasso/guernica.html" {
		t.Errorf("second forward -> %s, want guernica", loc)
	}
	if resp := getRaw(t, client, ts.URL+"/go/forward"); resp.StatusCode != http.StatusConflict {
		t.Errorf("forward at history tip = %d, want 409", resp.StatusCode)
	}
}

// TestTraversalNextFromMidHistory is the regression test for relative
// traversals on a session that went Back: /go/next must continue from
// the current history position, not from the trail tip.
func TestTraversalNextFromMidHistory(t *testing.T) {
	_, ts := testServer(t)
	client := noRedirectClient()
	getRaw(t, client, ts.URL+"/ByAuthor/picasso/avignon.html") // A
	getRaw(t, client, ts.URL+"/ByAuthor/picasso/guitar.html")  // B = next of A
	if resp := getRaw(t, client, ts.URL+"/go/back"); resp.StatusCode != http.StatusSeeOther {
		t.Fatalf("back = %d", resp.StatusCode)
	}
	// Mid-history at A: Next is B again — not C (the next of the trail
	// tip B, which a tip-relative traversal would produce).
	resp := getRaw(t, client, ts.URL+"/go/next")
	if resp.StatusCode != http.StatusSeeOther {
		t.Fatalf("next from mid-history = %d", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != "/ByAuthor/picasso/guitar.html" {
		t.Errorf("next from mid-history -> %s, want guitar (B)", loc)
	}
	// The navigation truncated the forward history.
	if resp := getRaw(t, client, ts.URL+"/go/forward"); resp.StatusCode != http.StatusConflict {
		t.Errorf("forward after truncating navigate = %d, want 409", resp.StatusCode)
	}
}

// TestHistoryEndpoint checks GET /history: the back/forward list with
// cursor, distinct from the /session trail, never cacheable.
func TestHistoryEndpoint(t *testing.T) {
	_, ts := testServer(t)
	client := noRedirectClient()
	getRaw(t, client, ts.URL+"/ByAuthor/picasso/avignon.html")
	getRaw(t, client, ts.URL+"/ByAuthor/picasso/guitar.html")
	getRaw(t, client, ts.URL+"/go/back")

	resp, err := client.Get(ts.URL + "/history")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
		t.Errorf("Cache-Control = %q, want no-store", cc)
	}
	var h struct {
		Entries []struct {
			Context string `json:"Context"`
			NodeID  string `json:"NodeID"`
		} `json:"entries"`
		Cursor     int  `json:"cursor"`
		CanBack    bool `json:"can_back"`
		CanForward bool `json:"can_forward"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if len(h.Entries) != 2 || h.Cursor != 0 {
		t.Fatalf("history = %+v", h)
	}
	if h.Entries[0].NodeID != "avignon" || h.Entries[1].NodeID != "guitar" {
		t.Errorf("entries = %+v", h.Entries)
	}
	if h.CanBack || !h.CanForward {
		t.Errorf("can_back=%v can_forward=%v, want false/true", h.CanBack, h.CanForward)
	}
}

// TestTraversalRedirectChainWalk follows a whole tour via redirects.
func TestTraversalRedirectChainWalk(t *testing.T) {
	_, ts := testServer(t)
	client := &http.Client{Jar: newCookieJar()} // follows redirects
	// Start at the first painting of the author tour.
	if code, _ := get(t, client, ts.URL+"/ByAuthor/picasso/avignon.html"); code != http.StatusOK {
		t.Fatal("entry failed")
	}
	// Two Next hops land on guernica's page (redirects followed).
	if code, body := get(t, client, ts.URL+"/go/next"); code != http.StatusOK || !strings.Contains(body, "<h1>Guitar</h1>") {
		t.Errorf("first next: %d", code)
	}
	if code, body := get(t, client, ts.URL+"/go/next"); code != http.StatusOK || !strings.Contains(body, "<h1>Guernica</h1>") {
		t.Errorf("second next: %d", code)
	}
}
