package server

import (
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
)

// TestLimiterShedsPastBound: with the serve class saturated, visitor
// requests are shed with 503 + Retry-After before any work, while
// operational probes keep answering.
func TestLimiterShedsPastBound(t *testing.T) {
	srv, _ := testServer(t)
	srv.limits.limits[limitServe] = 1

	// Occupy the single serve slot, as a blocked in-flight request would.
	if !srv.limits.acquire(limitServe) {
		t.Fatal("first acquire refused")
	}
	defer srv.limits.release(limitServe)

	rec := newRecorder()
	srv.ServeHTTP(rec, newRequest("/ByAuthor/picasso/guitar.html", ""))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("saturated page request = %d, want 503", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra != "1" {
		t.Errorf("Retry-After = %q, want 1", ra)
	}
	if cc := rec.Header().Get("Cache-Control"); cc != "no-store" {
		t.Errorf("Cache-Control = %q, want no-store (a shed must never be cached)", cc)
	}
	// No session cookie: the request was refused before any work.
	if c := rec.cookie(); c != "" {
		t.Errorf("shed request was issued a session cookie %q", c)
	}

	// Probes are exempt: a load balancer must be able to see an
	// overloaded server.
	for _, path := range []string{"/healthz", "/readyz", "/stats", "/metrics"} {
		rec := newRecorder()
		srv.ServeHTTP(rec, newRequest(path, ""))
		if rec.Code != http.StatusOK {
			t.Errorf("GET %s while saturated = %d, want 200", path, rec.Code)
		}
	}
}

// TestLimiterClassesAreIndependent: a saturated control plane does not
// shed visitor traffic, and vice versa.
func TestLimiterClassesAreIndependent(t *testing.T) {
	srv, _ := testServer(t)
	srv.limits.limits[limitAPI] = 1
	if !srv.limits.acquire(limitAPI) {
		t.Fatal("api acquire refused")
	}
	defer srv.limits.release(limitAPI)

	rec := newRecorder()
	srv.ServeHTTP(rec, newRequest("/api/v1/model", ""))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("saturated api request = %d, want 503", rec.Code)
	}
	rec = newRecorder()
	srv.ServeHTTP(rec, newRequest("/ByAuthor/picasso/guitar.html", ""))
	if rec.Code != http.StatusOK {
		t.Errorf("page while api saturated = %d, want 200", rec.Code)
	}
}

// TestLimiterRecovers: once the in-flight request finishes, the next
// request is admitted again.
func TestLimiterRecovers(t *testing.T) {
	srv, _ := testServer(t)
	srv.limits.limits[limitServe] = 1
	if !srv.limits.acquire(limitServe) {
		t.Fatal("acquire refused")
	}
	srv.limits.release(limitServe)

	rec := newRecorder()
	srv.ServeHTTP(rec, newRequest("/ByAuthor/picasso/guitar.html", ""))
	if rec.Code != http.StatusOK {
		t.Errorf("request after release = %d, want 200", rec.Code)
	}
}

// TestLimiterNeverExceedsBound hammers acquire/release from many
// goroutines and asserts the observed in-flight count never passes the
// limit — the invariant the 503s purchase.
func TestLimiterNeverExceedsBound(t *testing.T) {
	var l inflightLimiter
	const limit = 4
	l.limits[limitServe] = limit

	var inflight, peak, admitted atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				if !l.acquire(limitServe) {
					continue
				}
				n := inflight.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				admitted.Add(1)
				inflight.Add(-1)
				l.release(limitServe)
			}
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > limit {
		t.Errorf("peak in-flight = %d, limit %d", p, limit)
	}
	if admitted.Load() == 0 {
		t.Error("limiter admitted nothing")
	}
	if n := l.inflight[limitServe].n.Load(); n != 0 {
		t.Errorf("in-flight count leaked: %d after all releases", n)
	}
}

// TestLimiterZeroLimitUnbounded: the default — no configured bound —
// admits everything.
func TestLimiterZeroLimitUnbounded(t *testing.T) {
	var l inflightLimiter
	for i := 0; i < 1000; i++ {
		if !l.acquire(limitServe) {
			t.Fatal("unbounded limiter refused a request")
		}
	}
}

// TestShedCountsInMetrics: shed requests land in the shed counter and
// the 5xx request bucket.
func TestShedCountsInMetrics(t *testing.T) {
	srv, _ := testServer(t)
	srv.limits.limits[limitServe] = 1
	if !srv.limits.acquire(limitServe) {
		t.Fatal("acquire refused")
	}
	defer srv.limits.release(limitServe)

	before := httpShed[routePage].Value()
	rec := newRecorder()
	srv.ServeHTTP(rec, newRequest("/ByAuthor/picasso/guitar.html", ""))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", rec.Code)
	}
	if after := httpShed[routePage].Value(); after != before+1 {
		t.Errorf("shed counter moved %d→%d, want +1", before, after)
	}
}

// TestLimiterActiveAddsNoAllocs: an ACTIVE in-flight bound must not add
// a single allocation to the hot cached-page serve — the admitted path
// is two atomic adds.
func TestLimiterActiveAddsNoAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation skews allocation counts")
	}
	srv, _ := testServer(t)
	srv.limits.limits[limitServe] = 64
	rec := newRecorder()
	srv.ServeHTTP(rec, newRequest("/ByAuthor/picasso/guitar.html", ""))
	if rec.Code != http.StatusOK {
		t.Fatalf("warmup = %d", rec.Code)
	}
	req := newRequest("/ByAuthor/picasso/guitar.html", rec.cookie())
	if avg := serveAllocs(t, srv, req); avg > maxPageServeAllocs {
		t.Errorf("hot page with limiter = %.1f allocs/op, budget %d (limiter must add zero)",
			avg, maxPageServeAllocs)
	}
}

// TestShedPathAllocs: the refusal itself must stay cheap — shedding is
// what the server does when it has no headroom, so the shed path has
// its own (small) allocation budget.
func TestShedPathAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation skews allocation counts")
	}
	srv, _ := testServer(t)
	srv.limits.limits[limitServe] = 1
	if !srv.limits.acquire(limitServe) {
		t.Fatal("acquire refused")
	}
	defer srv.limits.release(limitServe)
	req := newRequest("/ByAuthor/picasso/guitar.html", "")
	w := &discardWriter{h: http.Header{}}
	w.reset()
	srv.ServeHTTP(w, req)
	avg := testing.AllocsPerRun(200, func() {
		w.reset()
		srv.ServeHTTP(w, req)
	})
	if avg > maxPageServeAllocs {
		t.Errorf("shed path = %.1f allocs/op, budget %d", avg, maxPageServeAllocs)
	}
}
