// Request-lifecycle tracing and profile labeling for the serving
// stack: the server-side half of the internal/obs tracer. The obs
// record path is clock-free by contract (navlint's hotpath rule), so
// everything here that reads time.Since lives in unannotated helpers
// and hands the recorder offsets — mirroring how ServeHTTP times
// observeRequest.

package server

import (
	"net/http"
	"runtime/pprof"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// WithTracing records every request's lifecycle into t: phases on a
// pooled span slot, kept into the trace ring when sampled or slower
// than the tracer's threshold (GET /api/v1/traces, navctl traces).
// The idle path — unsampled, fast — allocates nothing; the allocation
// guard covers the hot cached serve with tracing enabled.
func WithTracing(t *obs.Tracer) Option {
	return func(s *Server) { s.tracer = t }
}

// WithProfileLabels labels CPU profile samples with the request's
// route class and plane (serve/api/ops) via runtime/pprof.Do around
// the dispatch, so a profile from the -pprof listener segments by
// surface. Labeling costs a per-request context allocation, which is
// why it is an option tied to profiling rather than always on.
func WithProfileLabels() Option {
	return func(s *Server) { s.profileLabels = true }
}

// profileLabels is one precomputed label set per route class, so the
// per-request work is a lookup, not label construction.
var profileLabels [numRoutes]pprof.LabelSet

func init() {
	for rc := routeClass(0); rc < numRoutes; rc++ {
		plane := "serve"
		switch limitClassOf[rc] {
		case limitAPI:
			plane = "api"
		case limitOps:
			plane = "ops"
		}
		profileLabels[rc] = pprof.Labels("route", routeNames[rc], "plane", plane)
	}
}

// reqTrace is the per-request tracing handle threaded through the
// serve path. The zero value (tracing off) makes every method a nil
// check and nothing else, so the untraced configuration pays one
// predictable branch per instrumentation point. It is passed by value:
// two words plus the start time, no per-request allocation.
type reqTrace struct {
	t     *obs.ReqTrace
	start time.Time
}

// now returns the current offset from the request's start — the one
// place the serve path reads the clock for tracing.
func (rt reqTrace) now() time.Duration {
	if rt.t == nil {
		return 0
	}
	return time.Since(rt.start)
}

// span records a completed phase that began at offset from.
func (rt reqTrace) span(p obs.Phase, from time.Duration) {
	if rt.t == nil {
		return
	}
	rt.t.Span(p, from, time.Since(rt.start))
}

// traceparent renders the outgoing header value, "" when tracing is
// off (callers only render on propagated, sampled or shed paths —
// never for the idle case).
func (rt reqTrace) traceparent() string {
	if rt.t == nil {
		return ""
	}
	return rt.t.Traceparent()
}

// beginTrace starts a request's trace: a pooled slot, the sampling
// decision, and — when the caller sent W3C trace context — adoption of
// the upstream trace id.
func (s *Server) beginTrace(r *http.Request, start time.Time) reqTrace {
	if s.tracer == nil {
		return reqTrace{}
	}
	rt := reqTrace{t: s.tracer.Begin(), start: start}
	if tp := r.Header.Get("Traceparent"); tp != "" {
		rt.t.AdoptParent(tp)
	}
	return rt
}

// finishTrace ends the request's trace with its route, status and
// total duration; the tracer keeps it (sampled or slow) or recycles
// the slot.
func (s *Server) finishTrace(rt reqTrace, rc routeClass, path string, status int, total time.Duration) {
	if rt.t == nil {
		return
	}
	s.tracer.Finish(rt.t, routeNames[rc], path, status, total)
}

// cachePhase maps a page-cache outcome onto its trace phase.
var cachePhase = [...]obs.Phase{
	core.CacheHit:  obs.PhaseCacheHit,
	core.CacheJoin: obs.PhaseCacheJoin,
	core.CacheMiss: obs.PhaseCacheMiss,
}
