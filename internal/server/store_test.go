package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/museum"
	"repro/internal/navigation"
)

func testApp(t *testing.T) *core.App {
	t.Helper()
	app, err := core.NewApp(museum.PaperStore(), museum.Model(navigation.IndexedGuidedTour{}))
	if err != nil {
		t.Fatal(err)
	}
	return app
}

// fakeClock is a settable clock for TTL tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func TestSessionStoreTTLEviction(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	st := newSessionStore(4, 10*time.Minute, clock.now)
	model := testApp(t).Resolved()

	st.put("alice", navigation.NewSession(model))
	st.put("bob", navigation.NewSession(model))
	if st.len() != 2 {
		t.Fatalf("len = %d, want 2", st.len())
	}

	// Access refreshes the deadline: alice stays alive past the
	// original expiry because she keeps visiting.
	clock.advance(6 * time.Minute)
	if st.get("alice") == nil {
		t.Fatal("alice evicted before TTL")
	}
	clock.advance(6 * time.Minute) // alice idle 6m, bob idle 12m
	if st.get("bob") != nil {
		t.Error("bob should have expired")
	}
	if st.get("alice") == nil {
		t.Error("alice's refreshed session should still be live")
	}

	clock.advance(11 * time.Minute)
	if n := st.evictExpired(); n != 1 {
		t.Errorf("evictExpired = %d, want 1 (alice)", n)
	}
	if st.len() != 0 {
		t.Errorf("len after eviction = %d, want 0", st.len())
	}
}

func TestSessionStoreNoTTL(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	st := newSessionStore(2, 0, clock.now)
	st.put("id", navigation.NewSession(testApp(t).Resolved()))
	clock.advance(1000 * time.Hour)
	if st.get("id") == nil {
		t.Error("ttl<=0 must mean no expiry")
	}
	if st.evictExpired() != 0 {
		t.Error("evictExpired should be a no-op without TTL")
	}
}

func TestSessionStoreSharding(t *testing.T) {
	st := newSessionStore(8, time.Hour, nil)
	model := testApp(t).Resolved()
	for i := 0; i < 100; i++ {
		st.put(fmt.Sprintf("visitor-%03d", i), navigation.NewSession(model))
	}
	if st.len() != 100 {
		t.Fatalf("len = %d, want 100", st.len())
	}
	used := 0
	for _, sh := range st.shards {
		if len(sh.entries) > 0 {
			used++
		}
	}
	if used < 2 {
		t.Errorf("only %d of 8 shards used; hash not spreading", used)
	}
}

// TestServerSessionTTLOverHTTP drives eviction through the handler.
func TestServerSessionTTLOverHTTP(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	srv := New(testApp(t), WithSessionTTL(10*time.Minute), withClock(clock.now))
	ts := httptest.NewServer(srv)
	defer ts.Close()

	client := &http.Client{Jar: newCookieJar()}
	resp, err := client.Get(ts.URL + "/ByAuthor/picasso/guitar.html")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if srv.SessionCount() != 1 {
		t.Fatalf("sessions = %d, want 1", srv.SessionCount())
	}
	clock.advance(11 * time.Minute)
	if n := srv.EvictExpiredSessions(); n != 1 {
		t.Errorf("EvictExpiredSessions = %d, want 1", n)
	}
	// The stale cookie gets a fresh session (and trail) on return.
	resp, err = client.Get(ts.URL + "/ByAuthor/picasso/guernica.html")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if srv.SessionCount() != 1 {
		t.Errorf("sessions after revisit = %d, want 1", srv.SessionCount())
	}
}

// TestSessionCookieAttributes checks the cookie is HttpOnly and
// SameSite=Lax — the session id must be unreadable from page scripts.
func TestSessionCookieAttributes(t *testing.T) {
	srv := New(testApp(t))
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/ByAuthor/picasso/guitar.html")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	var cookie *http.Cookie
	for _, c := range resp.Cookies() {
		if c.Name == sessionCookie {
			cookie = c
		}
	}
	if cookie == nil {
		t.Fatal("no session cookie set")
	}
	if !cookie.HttpOnly {
		t.Error("session cookie not HttpOnly")
	}
	if cookie.SameSite != http.SameSiteLaxMode {
		t.Errorf("session cookie SameSite = %v, want Lax", cookie.SameSite)
	}
	if cookie.Path != "/" {
		t.Errorf("session cookie path = %q, want /", cookie.Path)
	}
}

// TestCachedServingMatchesUncached compares a cached server's pages
// against an uncached one's byte for byte.
func TestCachedServingMatchesUncached(t *testing.T) {
	app := testApp(t)
	cached := httptest.NewServer(New(app))
	defer cached.Close()
	uncached := httptest.NewServer(New(app, WithoutPageCache()))
	defer uncached.Close()

	for _, path := range []string{
		"/ByAuthor/picasso/guitar.html",
		"/ByAuthor/picasso/index.html",
		"/ByMovement/cubism/avignon.html",
	} {
		_, hot := get(t, cached.Client(), cached.URL+path)
		_, hot2 := get(t, cached.Client(), cached.URL+path) // cache hit
		_, cold := get(t, uncached.Client(), uncached.URL+path)
		if hot != cold || hot2 != cold {
			t.Errorf("cached page %s differs from uncached render", path)
		}
	}
	if app.CachedPages() == 0 {
		t.Error("cached server did not populate the page cache")
	}
}

// TestCacheInvalidationOverHTTP asserts the paper's change-cost scenario
// under cached serving: after SetAccessStructure no stale page may be
// served.
func TestCacheInvalidationOverHTTP(t *testing.T) {
	app, err := core.NewApp(museum.PaperStore(), museum.Model(navigation.Index{}))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(app))
	defer ts.Close()

	_, before := get(t, ts.Client(), ts.URL+"/ByAuthor/picasso/guitar.html")
	if strings.Contains(before, "nav-next") {
		t.Fatal("Index page should not have Next")
	}
	if err := app.SetAccessStructure("ByAuthor", navigation.IndexedGuidedTour{}); err != nil {
		t.Fatal(err)
	}
	_, after := get(t, ts.Client(), ts.URL+"/ByAuthor/picasso/guitar.html")
	if !strings.Contains(after, "nav-next") {
		t.Error("stale cached page served after access-structure change")
	}
}

// TestConcurrentHTTPTraffic hammers the handler from many goroutines
// with separate sessions; run with -race.
func TestConcurrentHTTPTraffic(t *testing.T) {
	srv := New(testApp(t), WithSessionShards(8))
	ts := httptest.NewServer(srv)
	defer ts.Close()

	paths := []string{
		"/ByAuthor/picasso/guitar.html",
		"/ByAuthor/picasso/guernica.html",
		"/ByMovement/cubism/avignon.html",
		"/ByAuthor/picasso/index.html",
		"/session",
		"/arcs?node=guitar",
	}
	const visitors = 8
	var wg sync.WaitGroup
	for v := 0; v < visitors; v++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			client := &http.Client{Jar: newCookieJar()}
			for i := 0; i < 25; i++ {
				resp, err := client.Get(ts.URL + paths[(v+i)%len(paths)])
				if err != nil {
					t.Errorf("visitor %d: %v", v, err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("visitor %d: %s -> %d", v, paths[(v+i)%len(paths)], resp.StatusCode)
					return
				}
			}
		}(v)
	}
	wg.Wait()
	if got := srv.SessionCount(); got != visitors {
		t.Errorf("sessions = %d, want %d", got, visitors)
	}
}
