package server

import (
	"hash/fnv"
	"sync"
	"time"

	"repro/internal/navigation"
)

// sessionEntry is one tracked visitor session with its expiry deadline.
type sessionEntry struct {
	sess    *navigation.Session
	expires time.Time
}

// sessionShard is one lock domain of the store.
type sessionShard struct {
	mu      sync.Mutex
	entries map[string]*sessionEntry
}

// sessionStore is a sharded, TTL-evicting map of visitor sessions. The
// shards split the lock so concurrent requests from different visitors
// do not serialize on one mutex, and the TTL bounds memory under heavy
// traffic: a session untouched for the TTL is evicted (lazily on access
// and in bulk by evictExpired, which the server's janitor drives).
type sessionStore struct {
	shards []*sessionShard
	ttl    time.Duration
	now    func() time.Time

	// onEvict, when non-nil, is called (without shard locks held, with
	// the entry already gone) for every session dropped by expiry — the
	// server uses it to delete the session's durable record so the
	// backing store cannot accumulate dead trails.
	onEvict func(id string)
}

// newSessionStore builds a store with the given shard count and TTL.
// A non-positive ttl means sessions never expire; now is the clock
// (nil selects time.Now — tests inject a fake).
func newSessionStore(shards int, ttl time.Duration, now func() time.Time) *sessionStore {
	if shards < 1 {
		shards = 1
	}
	if now == nil {
		now = time.Now
	}
	st := &sessionStore{
		shards: make([]*sessionShard, shards),
		ttl:    ttl,
		now:    now,
	}
	for i := range st.shards {
		st.shards[i] = &sessionShard{entries: map[string]*sessionEntry{}}
	}
	return st
}

// shard maps a session id onto its lock domain.
func (st *sessionStore) shard(id string) *sessionShard {
	h := fnv.New32a()
	_, _ = h.Write([]byte(id))
	return st.shards[h.Sum32()%uint32(len(st.shards))]
}

// get returns the live session for id, refreshing its TTL, or nil when
// unknown or expired (an expired entry is evicted on the way out).
func (st *sessionStore) get(id string) *navigation.Session {
	if id == "" {
		return nil
	}
	sh := st.shard(id)
	sh.mu.Lock()
	e, ok := sh.entries[id]
	if !ok {
		sh.mu.Unlock()
		return nil
	}
	if st.ttl > 0 {
		now := st.now()
		if now.After(e.expires) {
			delete(sh.entries, id)
			sh.mu.Unlock()
			if st.onEvict != nil {
				st.onEvict(id)
			}
			return nil
		}
		e.expires = now.Add(st.ttl)
	}
	sh.mu.Unlock()
	return e.sess
}

// put tracks a new session under id.
func (st *sessionStore) put(id string, sess *navigation.Session) {
	sh := st.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e := &sessionEntry{sess: sess}
	if st.ttl > 0 {
		e.expires = st.now().Add(st.ttl)
	}
	sh.entries[id] = e
}

// putIfAbsent tracks sess under id unless a live session is already
// there, and returns whichever session won. Rehydration uses this: two
// concurrent requests with the same cookie may both rebuild the session
// from its durable record, and the loser must adopt the winner's object
// rather than overwrite it (the winner may already have advanced).
func (st *sessionStore) putIfAbsent(id string, sess *navigation.Session) *navigation.Session {
	sh := st.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e, ok := sh.entries[id]; ok {
		if st.ttl <= 0 || !st.now().After(e.expires) {
			if st.ttl > 0 {
				e.expires = st.now().Add(st.ttl)
			}
			return e.sess
		}
	}
	e := &sessionEntry{sess: sess}
	if st.ttl > 0 {
		e.expires = st.now().Add(st.ttl)
	}
	sh.entries[id] = e
	return sess
}

// len counts live (unexpired) sessions.
func (st *sessionStore) len() int {
	now := st.now()
	n := 0
	for _, sh := range st.shards {
		sh.mu.Lock()
		for _, e := range sh.entries {
			if st.ttl <= 0 || !now.After(e.expires) {
				n++
			}
		}
		sh.mu.Unlock()
	}
	return n
}

// evictExpired sweeps every shard, dropping expired sessions, and
// returns how many were evicted.
func (st *sessionStore) evictExpired() int {
	if st.ttl <= 0 {
		return 0
	}
	now := st.now()
	var dropped []string
	for _, sh := range st.shards {
		sh.mu.Lock()
		for id, e := range sh.entries {
			if now.After(e.expires) {
				delete(sh.entries, id)
				dropped = append(dropped, id)
			}
		}
		sh.mu.Unlock()
	}
	if st.onEvict != nil {
		for _, id := range dropped {
			st.onEvict(id)
		}
	}
	return len(dropped)
}
