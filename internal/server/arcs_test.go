package server

import (
	"encoding/json"
	"net/http"
	"testing"
)

func TestArcsEndpoint(t *testing.T) {
	_, ts := testServer(t)
	code, body := get(t, ts.Client(), ts.URL+"/arcs?node=guitar")
	if code != http.StatusOK {
		t.Fatalf("status = %d: %s", code, body)
	}
	var arcs []struct {
		Context string `json:"context"`
		Kind    string `json:"kind"`
		To      string `json:"to"`
		Href    string `json:"href"`
	}
	if err := json.Unmarshal([]byte(body), &arcs); err != nil {
		t.Fatalf("JSON: %v in %s", err, body)
	}
	// guitar is in ByAuthor:picasso (up+next+prev) and ByMovement:cubism
	// (up+next): at least 5 outbound arcs under IGT.
	if len(arcs) < 5 {
		t.Errorf("arcs = %d, want >= 5: %+v", len(arcs), arcs)
	}
	contexts := map[string]bool{}
	kinds := map[string]bool{}
	for _, a := range arcs {
		contexts[a.Context] = true
		kinds[a.Kind] = true
		if a.Href == "" || a.To == "" {
			t.Errorf("incomplete arc %+v", a)
		}
	}
	if !contexts["ByAuthor:picasso"] || !contexts["ByMovement:cubism"] {
		t.Errorf("contexts = %v", contexts)
	}
	if !kinds["up"] || !kinds["next"] {
		t.Errorf("kinds = %v", kinds)
	}
}

func TestArcsEndpointErrors(t *testing.T) {
	_, ts := testServer(t)
	if code, _ := get(t, ts.Client(), ts.URL+"/arcs"); code != http.StatusBadRequest {
		t.Errorf("missing node param = %d, want 400", code)
	}
	if code, _ := get(t, ts.Client(), ts.URL+"/arcs?node=ghost"); code != http.StatusNotFound {
		t.Errorf("unknown node = %d, want 404", code)
	}
}
