package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/museum"
	"repro/internal/navigation"
	"repro/internal/storage"
)

// recorder wraps httptest.ResponseRecorder with session-cookie access.
type recorder struct{ *httptest.ResponseRecorder }

func newRecorder() *recorder { return &recorder{httptest.NewRecorder()} }

func (r *recorder) cookie() string {
	for _, c := range r.Result().Cookies() {
		if c.Name == sessionCookie {
			return c.Value
		}
	}
	return ""
}

// countingStore wraps a storage.Store counting writes, so tests can
// assert how many Puts the write-behind queue actually coalesced to.
type countingStore struct {
	storage.Store
	puts    atomic.Int64
	deletes atomic.Int64
}

func (c *countingStore) Put(key string, value []byte) error {
	c.puts.Add(1)
	return c.Store.Put(key, value)
}

func (c *countingStore) Delete(key string) error {
	c.deletes.Add(1)
	return c.Store.Delete(key)
}

// writeBehindServer builds a server over the paper museum with
// write-behind persistence and a flush interval long enough that only
// explicit flushes (or batch triggers) write.
func writeBehindServer(t *testing.T, st storage.Store, opts ...Option) *Server {
	t.Helper()
	app, err := core.NewApp(museum.PaperStore(), museum.Model(navigation.IndexedGuidedTour{}))
	if err != nil {
		t.Fatal(err)
	}
	srv := New(app, append([]Option{WithPersistence(st), WithFlushInterval(time.Hour)}, opts...)...)
	t.Cleanup(func() { srv.Close() })
	return srv
}

// step drives one request through the handler, returning the session
// cookie (issued or echoed).
func step(t *testing.T, srv *Server, path, cookie string) string {
	t.Helper()
	rec := newRecorder()
	req := newRequest(path, cookie)
	srv.ServeHTTP(rec, req)
	if rec.Code >= 400 {
		t.Fatalf("GET %s = %d", path, rec.Code)
	}
	if c := rec.cookie(); c != "" {
		return c
	}
	return cookie
}

// TestWriteBehindCoalescesSteps: several navigation steps between two
// flushes produce exactly one store write, carrying the latest state.
func TestWriteBehindCoalescesSteps(t *testing.T) {
	st := &countingStore{Store: storage.NewMem()}
	srv := writeBehindServer(t, st)
	cookie := step(t, srv, "/ByAuthor/picasso/avignon.html", "")
	cookie = step(t, srv, "/go/next", cookie)
	cookie = step(t, srv, "/go/next", cookie)

	if n := st.puts.Load(); n != 0 {
		t.Fatalf("store written before flush: %d puts", n)
	}
	if queued, _ := srv.PersistStats(); queued != 1 {
		t.Fatalf("queue depth = %d, want 1 (one dirty session)", queued)
	}

	srv.FlushSessions()

	if n := st.puts.Load(); n != 1 {
		t.Errorf("puts after flush = %d, want 1 (three steps coalesced)", n)
	}
	raw, err := st.Get(sessionKeyPrefix + cookie)
	if err != nil {
		t.Fatal(err)
	}
	var rec sessionRecord
	if err := json.Unmarshal(raw, &rec); err != nil {
		t.Fatal(err)
	}
	if len(rec.State.History) != 3 {
		t.Errorf("persisted history = %d visits, want 3", len(rec.State.History))
	}
	if rec.State.NodeID != "guernica" {
		t.Errorf("persisted position = %q, want guernica (the latest state)", rec.State.NodeID)
	}
	if queued, written := srv.PersistStats(); queued != 0 || written != 1 {
		t.Errorf("stats after flush = (%d queued, %d written), want (0, 1)", queued, written)
	}
}

// TestWriteBehindFlushesOnClose: Close drains the queue — a graceful
// shutdown loses no step.
func TestWriteBehindFlushesOnClose(t *testing.T) {
	st := storage.NewMem()
	srv := writeBehindServer(t, st)
	cookie := step(t, srv, "/ByAuthor/picasso/avignon.html", "")
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get(sessionKeyPrefix + cookie); err != nil {
		t.Errorf("record missing after Close: %v", err)
	}
	// A step after Close still persists (synchronously): a request that
	// raced shutdown must not lose its trail.
	cookie2 := step(t, srv, "/ByAuthor/picasso/guitar.html", "")
	if _, err := st.Get(sessionKeyPrefix + cookie2); err != nil {
		t.Errorf("post-Close step not persisted: %v", err)
	}
}

// TestWriteBehindBatchTriggersEarlyFlush: filling the batch flushes
// without waiting for the interval.
func TestWriteBehindBatchTriggersEarlyFlush(t *testing.T) {
	st := storage.NewMem()
	srv := writeBehindServer(t, st, WithFlushBatch(1))
	cookie := step(t, srv, "/ByAuthor/picasso/avignon.html", "")
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := st.Get(sessionKeyPrefix + cookie); err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("batch-full queue never flushed")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestWriteBehindEvictionSupersedesPendingWrite: a session evicted with
// a state write still queued must end up deleted, not resurrected — the
// tombstone supersedes the pending write.
func TestWriteBehindEvictionSupersedesPendingWrite(t *testing.T) {
	st := &countingStore{Store: storage.NewMem()}
	clock := time.Now()
	now := func() time.Time { return clock }
	srv := writeBehindServer(t, st, WithSessionTTL(time.Minute), withClock(now))
	cookie := step(t, srv, "/ByAuthor/picasso/avignon.html", "")

	clock = clock.Add(2 * time.Minute)
	if n := srv.EvictExpiredSessions(); n != 1 {
		t.Fatalf("evicted = %d, want 1", n)
	}
	srv.FlushSessions()

	if _, err := st.Get(sessionKeyPrefix + cookie); !errors.Is(err, storage.ErrNotFound) {
		t.Errorf("evicted session's record survives: err=%v", err)
	}
	if n := st.puts.Load(); n != 0 {
		t.Errorf("evicted session's pending state was still written (%d puts)", n)
	}
}

// TestHealthzReportsPersistenceQueue: the health payload carries the
// write-behind queue depth and the flushed-write total.
func TestHealthzReportsPersistenceQueue(t *testing.T) {
	st := storage.NewMem()
	srv := writeBehindServer(t, st)
	cookie := step(t, srv, "/ByAuthor/picasso/avignon.html", "")
	_ = cookie

	var health struct {
		PersistQueue   int    `json:"persist_queue"`
		PersistFlushed uint64 `json:"persist_flushed"`
	}
	rec := newRecorder()
	srv.ServeHTTP(rec, newRequest("/healthz", ""))
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health.PersistQueue != 1 || health.PersistFlushed != 0 {
		t.Errorf("healthz before flush = %+v, want queue 1, flushed 0", health)
	}

	srv.FlushSessions()
	rec = newRecorder()
	srv.ServeHTTP(rec, newRequest("/healthz", ""))
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health.PersistQueue != 0 || health.PersistFlushed != 1 {
		t.Errorf("healthz after flush = %+v, want queue 0, flushed 1", health)
	}
}

// TestSyncPersistenceCountsWrites: the synchronous path reports its
// writes through the same stats, with an always-empty queue.
func TestSyncPersistenceCountsWrites(t *testing.T) {
	st := storage.NewMem()
	_, ts := persistentServer(t, st)
	_, _, cookie := doGet(t, ts, "/ByAuthor/picasso/avignon.html", "")
	doGet(t, ts, "/go/next", cookie)

	var health struct {
		PersistQueue   int    `json:"persist_queue"`
		PersistFlushed uint64 `json:"persist_flushed"`
	}
	_, body, _ := doGet(t, ts, "/healthz", "")
	if err := json.Unmarshal([]byte(body), &health); err != nil {
		t.Fatal(err)
	}
	if health.PersistQueue != 0 || health.PersistFlushed != 2 {
		t.Errorf("sync healthz = %+v, want queue 0, flushed 2", health)
	}
}

// newRequest builds a GET with an optional session cookie.
func newRequest(path, cookie string) *http.Request {
	req, err := http.NewRequest(http.MethodGet, "http://test"+path, nil)
	if err != nil {
		panic(err)
	}
	if cookie != "" {
		req.AddCookie(&http.Cookie{Name: sessionCookie, Value: cookie})
	}
	return req
}
