// Degraded-mode serving: a store-health breaker watches the
// persistence path and flips the server into degraded mode after
// enough consecutive failures. Degraded means the hot read plane keeps
// serving — woven pages come from the cache, sessions live in memory —
// while session persistence queues in the flusher's retry queue;
// /healthz reports "degraded" with the cause, and /readyz answers 503
// so a load balancer drains new traffic toward healthy replicas. One
// successful store write closes the breaker again.

package server

import (
	"encoding/json"
	"net/http"
	"sync"
)

// DefaultBreakerThreshold is how many consecutive persistence failures
// flip the server into degraded mode.
const DefaultBreakerThreshold = 3

// breaker is the store-health circuit: consecutive persistence
// failures past the threshold open it (degraded), one success closes
// it. The degraded bit is an atomic so the serving path can read it
// without the mutex; the failure bookkeeping is mutex-guarded — it
// only runs on the flusher goroutine and error paths.
type breaker struct {
	threshold int

	mu          sync.Mutex
	consecFails int
	cause       string
	degradedBit bool
}

// newBreaker builds a breaker; a non-positive threshold gets the
// default.
func newBreaker(threshold int) *breaker {
	if threshold < 1 {
		threshold = DefaultBreakerThreshold
	}
	return &breaker{threshold: threshold}
}

// fail records one persistence failure with its cause; crossing the
// threshold opens the breaker.
func (b *breaker) fail(cause string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecFails++
	if b.consecFails >= b.threshold && !b.degradedBit {
		b.degradedBit = true
		b.cause = cause
	}
}

// ok records one persistence success, closing the breaker.
func (b *breaker) ok() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecFails = 0
	if b.degradedBit {
		b.degradedBit = false
		b.cause = ""
	}
}

// state reports whether the breaker is open and why.
func (b *breaker) state() (degraded bool, cause string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.degradedBit, b.cause
}

// Degraded reports whether the server is in degraded mode — the
// persistence path is failing and session durability is queued, while
// cached reads keep serving — and the cause that opened the breaker.
func (s *Server) Degraded() (degraded bool, cause string) {
	return s.health.state()
}

// RetryStats reports the failed-write retry queue: how many sessions
// await a re-attempt and how many entries were dropped because the
// queue was full. Zeroes on the synchronous path and when persistence
// is off.
func (s *Server) RetryStats() (queued int, dropped uint64) {
	if s.flush == nil {
		return 0, 0
	}
	return s.flush.retryDepth(), s.flush.dropped.Load()
}

// serveReady answers GET /readyz, the load-balancer drain contract:
// 200 {"status":"ready"} while the server should receive traffic, 503
// {"status":"degraded","cause":...} while the persistence path is
// failing — cached reads still work (and /healthz still answers 200,
// the process is alive), but new sessions only accumulate queued
// durability, so a balancer should prefer healthy replicas until the
// store recovers.
//
//repro:nostore
func (s *Server) serveReady(w http.ResponseWriter) {
	// Readiness must never be served stale by an intermediary.
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("Content-Type", "application/json")
	degraded, cause := s.Degraded()
	body := struct {
		Status string `json:"status"`
		Cause  string `json:"cause,omitempty"`
	}{Status: "ready"}
	if degraded {
		body.Status = "degraded"
		body.Cause = cause
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	_ = json.NewEncoder(w).Encode(body)
}
