package server

import (
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/museum"
	"repro/internal/navigation"
	"repro/internal/storage"
)

func benchApp(b *testing.B) *core.App {
	b.Helper()
	app, err := core.NewApp(museum.PaperStore(), museum.Model(navigation.IndexedGuidedTour{}))
	if err != nil {
		b.Fatal(err)
	}
	return app
}

// benchSessionChurn measures the per-step cost persistence adds to
// navigation. Under WithSyncPersistence that is the full snapshot,
// marshal and put; on the default write-behind path it is the
// coalescing enqueue, with the background flusher doing the writing.
func benchSessionChurn(b *testing.B, st storage.Store, opts ...Option) {
	app := benchApp(b)
	srv := New(app, append([]Option{WithPersistence(st)}, opts...)...)
	defer srv.Close()
	sessions := make([]*navigation.Session, 256)
	ids := make([]string, len(sessions))
	for i := range sessions {
		sess := navigation.NewSession(app.Resolved())
		if err := sess.EnterContext("ByAuthor:picasso", "avignon"); err != nil {
			b.Fatal(err)
		}
		sessions[i] = sess
		ids[i] = fmt.Sprintf("%032d", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv.saveSession(ids[i%len(ids)], sessions[i%len(sessions)], reqTrace{})
	}
}

func BenchmarkSessionChurnMem(b *testing.B) {
	st := storage.NewMem()
	defer st.Close()
	benchSessionChurn(b, st, WithSyncPersistence())
}

func BenchmarkSessionChurnFile(b *testing.B) {
	st, err := storage.OpenFile(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	benchSessionChurn(b, st, WithSyncPersistence())
}

func BenchmarkSessionChurnWriteBehindMem(b *testing.B) {
	st := storage.NewMem()
	defer st.Close()
	benchSessionChurn(b, st)
}

func BenchmarkSessionChurnWriteBehindFile(b *testing.B) {
	st, err := storage.OpenFile(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	benchSessionChurn(b, st)
}

// BenchmarkColdStartRehydrate measures resuming a visitor after a
// restart: the durable record is read, unmarshalled and re-resolved
// against the model. Sessions are dropped from memory between
// iterations so every lookup takes the rehydration path.
func BenchmarkColdStartRehydrate(b *testing.B) {
	st, err := storage.OpenFile(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	app := benchApp(b)
	const visitors = 1024
	trail := []navigation.Visit{
		{Context: "ByAuthor:picasso", NodeID: "avignon"},
		{Context: "ByAuthor:picasso", NodeID: "guitar"},
		{Context: "ByMovement:cubism", NodeID: "guitar"},
	}
	rec := sessionRecord{State: navigation.SessionState{
		Context: "ByMovement:cubism", NodeID: "guitar", History: trail,
	}}
	raw, err := json.Marshal(rec)
	if err != nil {
		b.Fatal(err)
	}
	ids := make([]string, visitors)
	for i := range ids {
		ids[i] = fmt.Sprintf("%032d", i)
		if err := st.Put(sessionKeyPrefix+ids[i], raw); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh server each round simulates the restarted process: its
		// memory store is empty, so lookup must go through the backend.
		if i%visitors == 0 {
			b.StopTimer()
			srv := New(app, WithPersistence(st))
			b.StartTimer()
			benchSrv = srv
		}
		if sess := benchSrv.lookup(ids[i%visitors], reqTrace{}); sess == nil {
			b.Fatal("rehydration missed")
		}
	}
}

// benchSrv keeps the rehydration benchmark's server alive across the
// timer boundary without the compiler eliding it.
var benchSrv *Server
