// Package server implements the XLink-aware user agent the paper's §6
// notes was missing in 2002 ("the browsers aren't ready to work with
// XLink yet"): an HTTP server that resolves the application's linkbase at
// request time and serves woven pages, while driving a real navigation
// session per visitor — the context trail that gives "Next" its meaning.
//
// Besides plain page GETs, the agent exposes traversal actions:
//
//	GET /go/next     follow the current context's Next edge
//	GET /go/prev     follow Previous
//	GET /go/up       go to the context's index page
//	GET /go/select?node=ID   descend from an index page to a member
//	GET /session     the visitor's context-qualified history as JSON
//	GET /healthz     liveness JSON: sessions, cache generation, backend
//	GET /stats       analytics JSON: recorder counters, adapt progress,
//	                 per-context traffic summaries
//
// The traversal endpoints answer according to the context through which
// the visitor reached the current node — the paper's §2 semantics, over
// HTTP. HEAD is supported everywhere with the same headers and no body.
//
// With WithAPIToken, a versioned control plane is mounted at /api/v1
// beside the serving routes: the navigational aspect as a wire artifact
// (GET model/contexts/structure, PUT structure and stylesheet, PATCH
// documents, POST snapshot and adapt), bearer-token guarded, with
// structured JSON errors and validate-then-mutate semantics. See api.go
// and the README's "Control plane" section.
//
// Page, linkbase and data responses carry a strong validator,
// ETag: "g<generation>-<hash>", precomputed when the content was woven
// or serialized — never per request. Invalidation is dependency-aware:
// a conditional GET keeps revalidating (304) until the specific content
// it names actually changes, not merely until any model mutation
// happens somewhere.
//
// With WithPersistence, every visitor's session reaches a storage.Store
// and is rehydrated lazily on first access — a restarted server resumes
// every context trail mid-tour. Persistence is write-behind by default:
// a step marks the session dirty in a coalescing queue and a background
// flusher writes the latest state in batches (WithFlushInterval,
// WithFlushBatch; Close runs the final drain). WithSyncPersistence
// restores the synchronous per-step write. The /healthz payload exposes
// the queue depth and total flushed writes.
package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/analytics"
	"repro/internal/core"
	"repro/internal/navigation"
	"repro/internal/obs"
	"repro/internal/storage"
)

// sessionCookie is the visitor-session cookie name.
const sessionCookie = "navsession"

// sessionKeyPrefix prefixes durable session records in the store.
const sessionKeyPrefix = "session/"

// Defaults for the session store; override with WithSessionTTL and
// WithSessionShards.
const (
	// DefaultSessionTTL is how long an idle visitor session is kept
	// before eviction. Every request refreshes the deadline.
	DefaultSessionTTL = 30 * time.Minute
	// DefaultSessionShards is the session store's lock-shard count.
	DefaultSessionShards = 16
	// DefaultTrailLimit caps each visitor session's trail at its
	// most-recent visits, so a long-lived crawler session cannot grow
	// its in-memory (and persisted) history without bound.
	DefaultTrailLimit = 1024
)

// Server serves a woven application. It is an http.Handler safe for
// concurrent use: pages are served through the application's woven-page
// cache and visitor sessions live in a sharded, TTL-evicting store,
// optionally written through a durable storage backend.
type Server struct {
	app      *core.App
	sessions *sessionStore
	useCache bool
	persist  storage.Store

	// flush is the write-behind persistence queue (nil when persistence
	// is off or WithSyncPersistence is set).
	flush *flusher
	// syncWrites counts the records written on the synchronous path,
	// mirroring flusher.flushed for /healthz.
	syncWrites atomic.Uint64

	// saveMu stripes serialize snapshot-then-Put per session id on the
	// synchronous path, so two concurrent saves of one session cannot
	// land in the store out of order (the stale snapshot overwriting
	// the fresh one). The write-behind path needs no stripes: one
	// flusher goroutine orders all writes.
	saveMu [16]sync.Mutex

	// health is the store-health breaker: consecutive persistence
	// failures flip the server into degraded mode (serving from cache,
	// durability queued, /readyz 503) until a write lands again.
	health *breaker

	// limits is the bounded in-flight request limiter; saturated
	// classes shed with 503 before any work is done.
	limits inflightLimiter

	// rec, when set, counts every navigation hop for the adaptation
	// pipeline; adapt tracks what the pipeline has derived so far.
	rec       *analytics.Recorder
	deriveCfg analytics.Config
	adapt     adaptState

	// apiToken guards the /api/v1 control plane (WithAPIToken); empty
	// means the control plane is disabled.
	apiToken string

	// tracer, when set, records request-lifecycle traces (WithTracing);
	// profileLabels labels CPU profile samples by route class
	// (WithProfileLabels).
	tracer        *obs.Tracer
	profileLabels bool

	// start anchors the uptime /healthz and /metrics report.
	start time.Time

	// configuration captured before the store is built
	ttl              time.Duration
	shards           int
	now              func() time.Time
	syncPersist      bool
	flushInterval    time.Duration
	flushBatch       int
	trailLimit       int
	retryLimit       int
	breakerThreshold int
}

// Option configures a Server.
type Option func(*Server)

// WithSessionTTL sets the idle session lifetime (0 disables expiry).
func WithSessionTTL(ttl time.Duration) Option {
	return func(s *Server) { s.ttl = ttl }
}

// WithSessionShards sets the session store's shard count.
func WithSessionShards(n int) Option {
	return func(s *Server) { s.shards = n }
}

// WithoutPageCache makes the server weave every page per request
// instead of serving from the woven-page cache (diagnostics and
// benchmark baselines).
func WithoutPageCache() Option {
	return func(s *Server) { s.useCache = false }
}

// WithPersistence writes every visitor session through st after each
// navigation step and rehydrates sessions lazily from st when they are
// not in memory — the durable-session half of the storage subsystem.
// Persistence is write-behind by default: steps mark the session dirty
// in a coalescing queue and a background flusher writes the latest
// state in batches (see WithFlushInterval and WithFlushBatch), so the
// request path never waits on the store. Call Close when done serving
// so the final states are flushed; use WithSyncPersistence to trade
// throughput back for per-step durability. The caller keeps ownership
// of st and closes it after the server is done serving (after Close).
func WithPersistence(st storage.Store) Option {
	return func(s *Server) { s.persist = st }
}

// WithSyncPersistence makes every navigation step marshal and write the
// session record before the response is sent, instead of queueing it
// for the write-behind flusher. A crash then loses no step — at the
// old synchronous cost per request. It also makes persistence effects
// deterministic for tests.
func WithSyncPersistence() Option {
	return func(s *Server) { s.syncPersist = true }
}

// WithFlushInterval sets how often the write-behind flusher drains the
// dirty-session queue (default DefaultFlushInterval). The interval
// bounds the worst-case durability window.
func WithFlushInterval(d time.Duration) Option {
	return func(s *Server) { s.flushInterval = d }
}

// WithFlushBatch sets how many sessions one flush round writes and the
// queue depth that triggers an early flush (default DefaultFlushBatch).
func WithFlushBatch(n int) Option {
	return func(s *Server) { s.flushBatch = n }
}

// WithTrailLimit caps every visitor session's trail at its most-recent
// n visits (0 disables the cap; the default is DefaultTrailLimit).
// Navigation semantics only ever read the current position, so capping
// changes nothing a visitor can observe except a shorter /session
// history.
func WithTrailLimit(n int) Option {
	return func(s *Server) { s.trailLimit = n }
}

// WithRetryLimit bounds the failed-write retry queue (default
// DefaultRetryLimit): while the store is down, up to n sessions keep
// their pending states queued for re-attempt with capped exponential
// backoff; past n the oldest entry is dropped and counted.
func WithRetryLimit(n int) Option {
	return func(s *Server) { s.retryLimit = n }
}

// WithBreakerThreshold sets how many consecutive persistence failures
// flip the server into degraded mode (default
// DefaultBreakerThreshold).
func WithBreakerThreshold(n int) Option {
	return func(s *Server) { s.breakerThreshold = n }
}

// withClock injects a fake clock for TTL tests.
func withClock(now func() time.Time) Option {
	return func(s *Server) { s.now = now }
}

// New returns a server over the given application. A server built with
// WithPersistence owns a background flusher: call Close when done
// serving so pending session states reach the store.
func New(app *core.App, opts ...Option) *Server {
	s := &Server{
		app:           app,
		useCache:      true,
		ttl:           DefaultSessionTTL,
		shards:        DefaultSessionShards,
		flushInterval: DefaultFlushInterval,
		flushBatch:    DefaultFlushBatch,
		trailLimit:    DefaultTrailLimit,
		retryLimit:    DefaultRetryLimit,
		start:         time.Now(),
	}
	for _, opt := range opts {
		opt(s)
	}
	s.health = newBreaker(s.breakerThreshold)
	s.sessions = newSessionStore(s.shards, s.ttl, s.now)
	if s.persist != nil && !s.syncPersist {
		s.flush = newFlusher(s.persist, s.sessions.ttl, s.sessions.now, s.flushBatch, s.flushInterval, s.retryLimit, s.health)
	}
	if s.persist != nil {
		// An expired session's durable record must die with it, or the
		// backing store would accumulate (and later resurrect) every
		// abandoned trail. On the write-behind path the delete is a
		// queued tombstone, so it cannot race a pending state write.
		s.sessions.onEvict = func(id string) {
			if s.flush != nil {
				s.flush.enqueueDelete(id)
				return
			}
			if err := s.persist.Delete(sessionKeyPrefix + id); err != nil {
				persistErrors.Inc()
				s.health.fail("session delete failing: " + err.Error())
			} else {
				s.health.ok()
			}
		}
	}
	return s
}

// Close flushes the write-behind persistence queue and stops its
// background goroutine. It does not close the storage backend — the
// caller owns that — and a server without persistence needs no Close.
// Safe to call more than once.
func (s *Server) Close() error {
	if s.flush != nil {
		s.flush.close()
	}
	return nil
}

// FlushSessions synchronously drains the write-behind queue, so a
// caller (an operator endpoint, a test) can force durability without
// shutting down. It is a no-op under synchronous persistence.
func (s *Server) FlushSessions() {
	if s.flush != nil {
		s.flush.flushNow()
	}
}

// PersistStats reports the write-behind queue depth and how many
// records have been written to the persistence backend so far (both
// paths). Zeroes when persistence is off.
func (s *Server) PersistStats() (queued int, written uint64) {
	if s.flush != nil {
		return s.flush.depth(), s.flush.flushed.Load()
	}
	return 0, s.syncWrites.Load()
}

// EvictExpiredSessions drops every session idle past its TTL and
// returns how many were evicted. Expired sessions are also dropped
// lazily on access; a long-running server calls this periodically
// (StartJanitor does so on a ticker) so abandoned sessions cannot
// accumulate between visits.
func (s *Server) EvictExpiredSessions() int { return s.sessions.evictExpired() }

// StartJanitor begins sweeping expired sessions every interval in a
// background goroutine and returns a stop function (idempotent). Wire
// the stop into the HTTP server's shutdown (cmd/navserve registers it
// with RegisterOnShutdown) so the sweeper does not outlive the server.
func (s *Server) StartJanitor(interval time.Duration) (stop func()) {
	done := make(chan struct{})
	ticker := time.NewTicker(interval)
	go func() {
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				s.sessions.evictExpired()
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}

// ServeHTTP implements http.Handler. The handler is method-aware per
// route class: /api/... dispatches into the control plane, whose
// resources declare their own methods (PUT, PATCH, POST where they
// mutate); every serving route supports GET and HEAD — HEAD responses
// carry the same headers (including ETag and Content-Length) with no
// body — and answers anything else with 405 and an Allow header (as
// structured JSON on the operational endpoints, matching the /api/v1
// contract).
//
// Every request is observed on the way out: route class, status class,
// the 200-vs-304 split and a latency histogram (see metrics.go and
// GET /metrics). The status wrapper is pooled and the record path is
// atomic adds, so instrumentation adds no allocation to the hot serve.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	rc := classify(r.URL.Path)
	rt := s.beginTrace(r, start)
	// Overload protection sheds before any work — no session lookup, no
	// cache touch, no store read happens for a refused request.
	lc := limitClassOf[rc]
	if !s.limits.acquire(lc) {
		// The shed 503 carries the trace context even though the trace
		// is usually not kept: an operator correlating a Retry-After
		// burst gets the id for free, and a shed slower than the slow
		// threshold (a stalled write) is captured like any other.
		shed(w, rt.traceparent())
		httpShed[rc].Inc()
		total := time.Since(start)
		observeRequest(rc, http.StatusServiceUnavailable, total)
		s.finishTrace(rt, rc, r.URL.Path, http.StatusServiceUnavailable, total)
		return
	}
	defer s.limits.release(lc)
	rt.span(obs.PhaseAdmit, 0)
	// Trace context is propagated on the response when the caller asked
	// for it (sent a traceparent) or the trace is sampled anyway; the
	// idle unsampled case skips the header so the hot serve stays
	// allocation-free. Slow-captured traces of header-less requests are
	// still joinable through the ring's path and timestamp.
	if rt.t != nil && (rt.t.HasParent() || rt.t.Sampled()) {
		w.Header().Set("Traceparent", rt.t.Traceparent())
	}
	sw := statusWriterPool.Get().(*statusWriter)
	sw.ResponseWriter, sw.status = w, 0
	if s.profileLabels {
		pprof.Do(r.Context(), profileLabels[rc], func(context.Context) {
			s.dispatch(sw, r, rc, rt)
		})
	} else {
		s.dispatch(sw, r, rc, rt)
	}
	status := sw.status
	if status == 0 {
		status = http.StatusOK
	}
	sw.ResponseWriter = nil
	statusWriterPool.Put(sw)
	total := time.Since(start)
	observeRequest(rc, status, total)
	s.finishTrace(rt, rc, r.URL.Path, status, total)
}

// dispatch routes one admitted request to its plane: the control
// plane's method-aware resources, or the GET/HEAD serving surface.
func (s *Server) dispatch(w http.ResponseWriter, r *http.Request, rc routeClass, rt reqTrace) {
	if rc == routeAPI {
		s.serveAPI(w, r, rt)
		return
	}
	switch r.Method {
	case http.MethodGet:
		s.route(w, r, rt)
	case http.MethodHead:
		hw := &headWriter{inner: w}
		s.route(hw, r, rt)
		hw.finish()
	default:
		s.methodNotAllowed(w, r)
	}
}

// methodNotAllowed answers a non-GET/HEAD request on a serving route.
// The operational endpoints follow the /api/v1 contract — structured
// JSON error, no-store — so a prober speaking the API convention gets
// the same shape everywhere; plain routes keep the plain-text 405.
func (s *Server) methodNotAllowed(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Allow", "GET, HEAD")
	switch r.URL.Path {
	case "/healthz", "/readyz", "/stats", "/metrics":
		w.Header().Set("Cache-Control", "no-store")
		apiError(w, http.StatusMethodNotAllowed,
			"method %s not allowed on %s (allow: GET, HEAD)", r.Method, r.URL.Path)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// route dispatches one GET/HEAD request.
func (s *Server) route(w http.ResponseWriter, r *http.Request, rt reqTrace) {
	path := strings.TrimPrefix(r.URL.Path, "/")
	switch {
	case path == "":
		s.serveSiteMap(w)
	case path == "links.xml":
		s.serveXML(w, r, "links.xml", rt)
	case strings.HasPrefix(path, "data/"):
		s.serveXML(w, r, strings.TrimPrefix(path, "data/"), rt)
	case path == "session":
		s.serveSession(w, r, rt)
	case path == "history":
		s.serveHistory(w, r, rt)
	case path == "healthz":
		s.serveHealth(w)
	case path == "readyz":
		s.serveReady(w)
	case path == "stats":
		s.serveStats(w)
	case path == "metrics":
		s.serveMetrics(w)
	case path == "arcs":
		s.serveArcs(w, r)
	case strings.HasPrefix(path, "go/"):
		s.serveTraversal(w, r, strings.TrimPrefix(path, "go/"), rt)
	case strings.HasSuffix(path, ".html"):
		s.servePage(w, r, path, rt)
	default:
		http.NotFound(w, r)
	}
}

// headWriter turns a GET handler into a HEAD one: headers and status
// pass through, the body is counted but discarded, and finish stamps
// the counted length as Content-Length before the header goes out.
type headWriter struct {
	inner  http.ResponseWriter
	status int
	body   int
}

func (hw *headWriter) Header() http.Header { return hw.inner.Header() }

func (hw *headWriter) WriteHeader(status int) {
	// Deferred to finish so Content-Length can still be set.
	if hw.status == 0 {
		hw.status = status
	}
}

func (hw *headWriter) Write(p []byte) (int, error) {
	if hw.status == 0 {
		hw.status = http.StatusOK
	}
	hw.body += len(p)
	return len(p), nil
}

// finish emits the response head: the handler's status and, when a body
// was produced and the handler did not set its own length, the length a
// GET would have had.
func (hw *headWriter) finish() {
	if hw.status == 0 {
		hw.status = http.StatusOK
	}
	if hw.body > 0 && hw.inner.Header().Get("Content-Length") == "" {
		hw.inner.Header().Set("Content-Length", strconv.Itoa(hw.body))
	}
	hw.inner.WriteHeader(hw.status)
}

// etagMatches reports whether an If-None-Match header value matches the
// given strong ETag ("*" matches anything; weak prefixes are ignored
// per RFC 9110's weak comparison, which is what If-None-Match uses).
// The candidate list is walked in place — a revalidation request on the
// hot path must not allocate a slice per header.
//
//repro:hotpath
func etagMatches(ifNoneMatch, etag string) bool {
	target := strings.TrimPrefix(etag, "W/")
	rest := ifNoneMatch
	for rest != "" {
		candidate := rest
		if i := strings.IndexByte(rest, ','); i >= 0 {
			candidate, rest = rest[:i], rest[i+1:]
		} else {
			rest = ""
		}
		candidate = strings.TrimSpace(candidate)
		candidate = strings.TrimPrefix(candidate, "W/")
		if candidate == "*" || candidate == target {
			return true
		}
	}
	return false
}

// writeValidated writes a body whose ETag and Content-Length were
// precomputed at weave/serialization time, answering 304 Not Modified
// when the request's If-None-Match already names the tag. Nothing here
// hashes, copies or formats: the bytes are shared with the cache, the
// length string was stamped when the body was built (an empty one lets
// net/http fill the header in — no formatting on this path).
//
//repro:hotpath
func writeValidated(w http.ResponseWriter, r *http.Request, contentType string, body []byte, etag, contentLength string) {
	h := w.Header()
	h.Set("ETag", etag)
	h.Set("Cache-Control", "no-cache")
	if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatches(inm, etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	h.Set("Content-Type", contentType)
	if contentLength != "" {
		h.Set("Content-Length", contentLength)
	}
	_, _ = w.Write(body)
}

// serveSiteMap lists every resolved context with a link to its entry.
func (s *Server) serveSiteMap(w http.ResponseWriter) {
	var sb strings.Builder
	sb.WriteString("<!DOCTYPE html>\n<html><head><title>Site map</title></head><body>\n")
	sb.WriteString("<h1>Navigational contexts</h1>\n<ul>\n")
	var names []string
	for _, rc := range s.app.Resolved().Contexts {
		names = append(names, rc.Name)
	}
	sort.Strings(names)
	for _, name := range names {
		rc := s.app.Resolved().Context(name)
		fmt.Fprintf(&sb, "<li><a href=\"/%s\">%s</a> (%d members, %s)</li>\n",
			core.PagePath(name, rc.EntryNode()), name, len(rc.Members), rc.Def.Access.Kind())
	}
	sb.WriteString("</ul>\n<p><a href=\"/links.xml\">links.xml</a></p>\n</body></html>\n")
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write([]byte(sb.String()))
}

// serveXML serves a repository document (data file or linkbase) from
// the application's serialized-document cache: the bytes and validator
// were produced when the model last changed, not per request.
func (s *Server) serveXML(w http.ResponseWriter, r *http.Request, uri string, rt reqTrace) {
	body, etag, clen, err := s.app.DocBytes(uri)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	from := rt.now()
	writeValidated(w, r, "application/xml; charset=utf-8", body, etag, clen)
	rt.span(obs.PhaseWrite, from)
}

// serveHealth reports the serving stack's vitals for load-balancer
// checks: live session count, woven-page cache state, the session
// persistence backend ("none" when sessions are memory-only), the
// write-behind queue — persist_queue is how many dirty sessions await
// their flush, persist_flushed how many records have reached the store
// — and process vitals (uptime, goroutine count, heap bytes) so a
// probe can catch a leak without attaching pprof.
//
//repro:nostore
func (s *Server) serveHealth(w http.ResponseWriter) {
	backend := "none"
	if s.persist != nil {
		backend = s.persist.Name()
	}
	queued, written := s.PersistStats()
	retryQueued, retryDropped := s.RetryStats()
	status := "ok"
	degraded, cause := s.Degraded()
	if degraded {
		status = "degraded"
	}
	var rec analytics.Stats
	if s.rec != nil {
		rec = s.rec.Stats()
	}
	adaptGen, derived := s.AdaptStats()
	var mem runtime.MemStats
	runtime.ReadMemStats(&mem)
	// Operational state must never be served stale by an intermediary.
	w.Header().Set("Cache-Control", "no-store")
	health := struct {
		Status          string `json:"status"`
		DegradedCause   string `json:"degraded_cause,omitempty"`
		Sessions        int    `json:"sessions"`
		CacheGeneration uint64 `json:"cache_generation"`
		CachedPages     int    `json:"cached_pages"`
		Store           string `json:"store"`
		PersistQueue    int    `json:"persist_queue"`
		PersistFlushed  uint64 `json:"persist_flushed"`
		RetryQueue      int    `json:"persist_retry_queue"`
		RetryDropped    uint64 `json:"persist_retry_dropped"`
		// Process vitals.
		UptimeSeconds float64 `json:"uptime_seconds"`
		Goroutines    int     `json:"goroutines"`
		HeapBytes     uint64  `json:"heap_bytes"`
		// Analytics vitals: zero across the board when no recorder is
		// configured.
		AnalyticsRecorded   uint64 `json:"analytics_recorded"`
		AnalyticsSampledOut uint64 `json:"analytics_sampled_out"`
		AnalyticsDropped    uint64 `json:"analytics_dropped"`
		AdaptGeneration     uint64 `json:"adapt_generation"`
		DerivedStructures   uint64 `json:"derived_structures"`
	}{
		Status:          status,
		DegradedCause:   cause,
		Sessions:        s.sessions.len(),
		CacheGeneration: s.app.CacheGeneration(),
		CachedPages:     s.app.CachedPages(),
		Store:           backend,
		PersistQueue:    queued,
		PersistFlushed:  written,
		RetryQueue:      retryQueued,
		RetryDropped:    retryDropped,

		UptimeSeconds: time.Since(s.start).Seconds(),
		Goroutines:    runtime.NumGoroutine(),
		HeapBytes:     mem.HeapAlloc,

		AnalyticsRecorded:   rec.Recorded,
		AnalyticsSampledOut: rec.SampledOut,
		AnalyticsDropped:    rec.Dropped,
		AdaptGeneration:     adaptGen,
		DerivedStructures:   derived,
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(health)
}

// servePage resolves /{family}/{group...}/{node}.html to a woven page and
// moves the visitor's session there.
func (s *Server) servePage(w http.ResponseWriter, r *http.Request, path string, rt reqTrace) {
	contextName, nodeID, err := splitPagePath(path)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	var page *core.Page
	renderFrom := rt.now()
	if s.useCache {
		// The stat variant reports how the page was obtained, so the trace
		// distinguishes a cache hit from a single-flight join from a weave.
		var outcome core.CacheOutcome
		page, outcome, err = s.app.RenderPageCachedStat(contextName, nodeID)
		if err == nil {
			rt.span(cachePhase[outcome], renderFrom)
		}
	} else {
		page, err = s.app.RenderPage(contextName, nodeID)
		if err == nil {
			rt.span(obs.PhaseWeave, renderFrom)
		}
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	id, sess := s.session(w, r, rt)
	var prevCtx *navigation.ResolvedContext
	var prevNode string
	if s.rec != nil {
		prevCtx, prevNode = sess.Location()
	}
	if err := sess.EnterContext(contextName, nodeID); err != nil {
		// RenderPage accepted the pair, so the session must too;
		// failing here indicates a model/session mismatch.
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if s.rec != nil {
		hopFrom := rt.now()
		s.recordHop(prevCtx, prevNode, contextName, nodeID)
		rt.span(obs.PhaseHopRecord, hopFrom)
	}
	// The visit counts even when the response is a 304: revalidating a
	// cached page is still a traversal to it.
	s.saveSession(id, sess, rt)
	writeFrom := rt.now()
	writeValidated(w, r, "text/html; charset=utf-8", page.Body, page.ETag, page.ContentLength)
	rt.span(obs.PhaseWrite, writeFrom)
}

// serveTraversal performs a session-relative navigation action and
// redirects to the resulting page — Next answered per the visitor's
// current context, the §2 semantics over HTTP.
func (s *Server) serveTraversal(w http.ResponseWriter, r *http.Request, action string, rt reqTrace) {
	id, sess := s.session(w, r, rt)
	if sess.Context() == nil {
		http.Error(w, "no current context; visit a page first", http.StatusConflict)
		return
	}
	var prevCtx *navigation.ResolvedContext
	var prevNode string
	if s.rec != nil {
		prevCtx, prevNode = sess.Location()
	}
	var err error
	switch action {
	case "next":
		err = sess.Next()
	case "prev":
		err = sess.Prev()
	case "up":
		err = sess.Up()
	case "back":
		err = sess.Back()
	case "forward":
		err = sess.Forward()
	case "select":
		node := r.URL.Query().Get("node")
		if node == "" {
			http.Error(w, "select requires ?node=", http.StatusBadRequest)
			return
		}
		err = sess.Select(node)
	case "switch":
		ctx := r.URL.Query().Get("context")
		if ctx == "" {
			http.Error(w, "switch requires ?context=", http.StatusBadRequest)
			return
		}
		err = sess.SwitchContext(ctx)
	default:
		http.Error(w, fmt.Sprintf("unknown action %q", action), http.StatusNotFound)
		return
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	s.saveSession(id, sess, rt)
	// One consistent snapshot: reading context and node separately
	// could mix states from two concurrent traversals on this session.
	rc, nodeID := sess.Location()
	if s.rec != nil {
		hopFrom := rt.now()
		s.recordHop(prevCtx, prevNode, rc.Name, nodeID)
		rt.span(obs.PhaseHopRecord, hopFrom)
	}
	target := "/" + core.PagePath(rc.Name, nodeID)
	writeFrom := rt.now()
	http.Redirect(w, r, target, http.StatusSeeOther)
	rt.span(obs.PhaseWrite, writeFrom)
}

// splitPagePath turns "ByAuthor/picasso/guitar.html" into
// ("ByAuthor:picasso", "guitar"); the final "index.html" maps to the hub.
// Empty segments (leading, doubled or trailing slashes) are rejected —
// "ByAuthor//guitar.html" names no context.
func splitPagePath(path string) (contextName, nodeID string, err error) {
	segs := strings.Split(strings.TrimSuffix(path, ".html"), "/")
	if len(segs) < 2 {
		return "", "", fmt.Errorf("server: page path %q too short", path)
	}
	for _, seg := range segs {
		if seg == "" {
			return "", "", fmt.Errorf("server: page path %q has an empty segment", path)
		}
	}
	nodeID = segs[len(segs)-1]
	if nodeID == "index" {
		nodeID = navigation.HubID
	}
	contextName = strings.Join(segs[:len(segs)-1], ":")
	return contextName, nodeID, nil
}

// session returns the requester's navigation session and its id,
// creating the session (and setting the cookie) on first contact. When a
// persistence backend is configured, a session missing from memory is
// first looked for there — the lazy rehydration that lets a restarted
// server resume every visitor mid-trail. The cookie is HttpOnly and
// SameSite=Lax: the session id is never readable from page scripts and
// is not sent on cross-site subrequests.
func (s *Server) session(w http.ResponseWriter, r *http.Request, rt reqTrace) (string, *navigation.Session) {
	id := ""
	if c, err := r.Cookie(sessionCookie); err == nil && c.Value != "" {
		id = c.Value
	}
	if sess := s.lookup(id, rt); sess != nil {
		// A session that outlived a model mutation (an adaptation
		// cycle, an operator swap) is rebased onto the current model,
		// so its traversals follow the same edges the woven pages
		// show; an unchanged model makes Rebase a pointer compare
		// under the session's own lock. A position the new model no
		// longer has means the trail cannot continue — fall through to
		// a fresh session (the stale one ages out via its TTL).
		if sess.Rebase(s.app.Resolved()) == nil {
			return id, sess
		}
	}
	id = newSessionID()
	http.SetCookie(w, &http.Cookie{
		Name:     sessionCookie,
		Value:    id,
		Path:     "/",
		HttpOnly: true,
		SameSite: http.SameSiteLaxMode,
	})
	sess := navigation.NewSession(s.app.Resolved())
	sess.SetTrailLimit(s.trailLimit)
	s.sessions.put(id, sess)
	return id, sess
}

// lookup finds a live session by id: in memory first, then (when
// persistence is on) rehydrated from the durable store.
func (s *Server) lookup(id string, rt reqTrace) *navigation.Session {
	if id == "" {
		return nil
	}
	lookupFrom := rt.now()
	sess := s.sessions.get(id)
	rt.span(obs.PhaseSessionLookup, lookupFrom)
	if sess != nil {
		return sess
	}
	if s.persist == nil {
		return nil
	}
	// Rehydration is traced as one phase — the store read, the decode and
	// the restore are a single cold-start cost from the request's view.
	rehydrateFrom := rt.now()
	sess = s.rehydrate(id)
	rt.span(obs.PhaseSessionRehydrate, rehydrateFrom)
	return sess
}

// sessionRecord is the durable form of one visitor session.
type sessionRecord struct {
	State navigation.SessionState `json:"state"`
	// Expires bounds rehydration the way the TTL bounds memory: a
	// record past its deadline is dead even if the janitor never saw
	// it. Zero means no expiry.
	Expires time.Time `json:"expires,omitempty"`
}

// saveSession records that the session's durable state is behind. On
// the default write-behind path that is one coalescing map insert — the
// snapshot, marshal and store write happen on the background flusher,
// and ten steps between two flushes cost one write. Under
// WithSyncPersistence the record is marshalled and written here, under
// a per-id stripe lock — without it, two concurrent steps on one
// session could persist out of order and leave the durable record a
// step behind the in-memory trail until the next save. Either way a
// failed write costs durability of this one step, not the request.
func (s *Server) saveSession(id string, sess *navigation.Session, rt reqTrace) {
	if s.persist == nil {
		return
	}
	if s.flush != nil {
		enqueueFrom := rt.now()
		s.flush.enqueue(id, sess)
		rt.span(obs.PhaseFlushEnqueue, enqueueFrom)
		return
	}
	mu := &s.saveMu[fnv32(id)%uint32(len(s.saveMu))]
	mu.Lock()
	defer mu.Unlock()
	rec := sessionRecord{State: sess.State()}
	if s.sessions.ttl > 0 {
		rec.Expires = s.sessions.now().Add(s.sessions.ttl)
	}
	raw, err := json.Marshal(rec)
	if err != nil {
		persistErrors.Inc()
		return
	}
	// The storage-op phase covers only the store write, not the snapshot
	// or marshal above — it is the span a slow-request trace points at
	// when the backend stalls.
	putFrom := rt.now()
	err = s.persist.Put(sessionKeyPrefix+id, raw)
	rt.span(obs.PhaseStorageOp, putFrom)
	if err != nil {
		// The synchronous path has no retry queue — this step's
		// durability is lost — but the failure still counts and still
		// trips the breaker, so /readyz drains the instance.
		persistErrors.Inc()
		s.health.fail("session persistence failing: " + err.Error())
		return
	}
	s.syncWrites.Add(1)
	s.health.ok()
}

// fnv32 hashes a session id onto the save stripes.
func fnv32(s string) uint32 {
	h := fnv.New32a()
	_, _ = h.Write([]byte(s))
	return h.Sum32()
}

// rehydrate restores a session from its durable record, tracking it in
// memory on success. Expired, corrupt or model-orphaned records are
// deleted and treated as a miss.
func (s *Server) rehydrate(id string) *navigation.Session {
	raw, err := s.persist.Get(sessionKeyPrefix + id)
	if err != nil {
		// A miss is normal (an unknown or expired cookie); a store read
		// error is the persistence path failing and feeds the breaker.
		// Either way the visitor gets a fresh session — degraded mode
		// serves on, it just cannot resume cold trails.
		if !errors.Is(err, storage.ErrNotFound) {
			s.health.fail("session read failing: " + err.Error())
		}
		return nil
	}
	var rec sessionRecord
	if err := json.Unmarshal(raw, &rec); err != nil {
		_ = s.persist.Delete(sessionKeyPrefix + id)
		return nil
	}
	if !rec.Expires.IsZero() && s.sessions.now().After(rec.Expires) {
		_ = s.persist.Delete(sessionKeyPrefix + id)
		return nil
	}
	sess, err := navigation.RestoreSession(s.app.Resolved(), rec.State)
	if err != nil {
		// The model moved on under the stored trail; a fresh session is
		// more honest than a position that no longer exists.
		_ = s.persist.Delete(sessionKeyPrefix + id)
		return nil
	}
	// A record written under an older (or absent) cap is trimmed on the
	// way in, so the cap holds across restarts too.
	sess.SetTrailLimit(s.trailLimit)
	// putIfAbsent, not put: a concurrent request may have rehydrated
	// (and even advanced) this session while we were rebuilding it, and
	// overwriting would roll the visitor back a step.
	return s.sessions.putIfAbsent(id, sess)
}

// serveSession returns the requester's visit trail as JSON — the context
// history that makes navigation context-dependent.
//
//repro:nostore
func (s *Server) serveSession(w http.ResponseWriter, r *http.Request, rt reqTrace) {
	visits := []navigation.Visit{}
	if c, err := r.Cookie(sessionCookie); err == nil {
		if sess := s.lookup(c.Value, rt); sess != nil {
			visits = sess.History()
			if visits == nil {
				visits = []navigation.Visit{}
			}
		}
	}
	// The trail is keyed by the requester's cookie; a shared cache serving
	// it to another visitor would leak their history.
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(visits)
}

// historyJSON is the wire form of a session's navigation history: the
// back/forward list with its cursor, distinct from the /session trail
// (which logs every position including re-arrivals via Back).
type historyJSON struct {
	Entries    []navigation.Visit `json:"entries"`
	Cursor     int                `json:"cursor"`
	CanBack    bool               `json:"can_back"`
	CanForward bool               `json:"can_forward"`
}

// serveHistory returns the requester's navigation history — the list
// /go/back and /go/forward traverse, with the cursor marking the
// current position. Like /session it is keyed by the requester's
// cookie, so it must never be cached by an intermediary.
//
//repro:nostore
func (s *Server) serveHistory(w http.ResponseWriter, r *http.Request, rt reqTrace) {
	h := historyJSON{Entries: []navigation.Visit{}}
	if c, err := r.Cookie(sessionCookie); err == nil {
		if sess := s.lookup(c.Value, rt); sess != nil {
			entries, cur := sess.NavHistory()
			if entries != nil {
				h.Entries = entries
			}
			h.Cursor = cur
			h.CanBack = cur > 0 && len(entries) > 0
			h.CanForward = cur < len(entries)-1
		}
	}
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(h)
}

// arcJSON is the wire form of one outbound traversal arc.
type arcJSON struct {
	Context string `json:"context"`
	Kind    string `json:"kind"`
	To      string `json:"to"`
	Label   string `json:"label"`
	Href    string `json:"href"`
}

// serveArcs answers the XLink-agent introspection query "which traversals
// begin at this node?": GET /arcs?node=ID returns, per containing
// context, the outbound arcs as JSON.
//
//repro:nostore
func (s *Server) serveArcs(w http.ResponseWriter, r *http.Request) {
	nodeID := r.URL.Query().Get("node")
	if nodeID == "" {
		http.Error(w, "arcs requires ?node=", http.StatusBadRequest)
		return
	}
	containing := s.app.Resolved().ContextsContaining(nodeID)
	if len(containing) == 0 {
		http.Error(w, fmt.Sprintf("no context contains node %q", nodeID), http.StatusNotFound)
		return
	}
	arcs := []arcJSON{}
	for _, rc := range containing {
		for _, e := range rc.OutEdges(nodeID) {
			arcs = append(arcs, arcJSON{
				Context: rc.Name,
				Kind:    string(e.Kind),
				To:      e.To,
				Label:   e.Label,
				Href:    "/" + core.PagePath(rc.Name, e.To),
			})
		}
	}
	// Arcs reflect the live linkbase; a cached copy would misreport a
	// structure swap.
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(arcs)
}

// SessionCount reports the number of live tracked sessions (for tests
// and diagnostics).
func (s *Server) SessionCount() int { return s.sessions.len() }

func newSessionID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failure is unrecoverable for session issuance;
		// a constant fallback would collide, so fail loudly.
		panic(fmt.Sprintf("server: session id entropy unavailable: %v", err))
	}
	return hex.EncodeToString(b[:])
}
