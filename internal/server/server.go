// Package server implements the XLink-aware user agent the paper's §6
// notes was missing in 2002 ("the browsers aren't ready to work with
// XLink yet"): an HTTP server that resolves the application's linkbase at
// request time and serves woven pages, while driving a real navigation
// session per visitor — the context trail that gives "Next" its meaning.
//
// Besides plain page GETs, the agent exposes traversal actions:
//
//	GET /go/next     follow the current context's Next edge
//	GET /go/prev     follow Previous
//	GET /go/up       go to the context's index page
//	GET /go/select?node=ID   descend from an index page to a member
//	GET /session     the visitor's context-qualified history as JSON
//
// The traversal endpoints answer according to the context through which
// the visitor reached the current node — the paper's §2 semantics, over
// HTTP.
package server

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/navigation"
)

// sessionCookie is the visitor-session cookie name.
const sessionCookie = "navsession"

// Defaults for the session store; override with WithSessionTTL and
// WithSessionShards.
const (
	// DefaultSessionTTL is how long an idle visitor session is kept
	// before eviction. Every request refreshes the deadline.
	DefaultSessionTTL = 30 * time.Minute
	// DefaultSessionShards is the session store's lock-shard count.
	DefaultSessionShards = 16
)

// Server serves a woven application. It is an http.Handler safe for
// concurrent use: pages are served through the application's woven-page
// cache and visitor sessions live in a sharded, TTL-evicting store.
type Server struct {
	app      *core.App
	sessions *sessionStore
	useCache bool

	// configuration captured before the store is built
	ttl    time.Duration
	shards int
	now    func() time.Time
}

// Option configures a Server.
type Option func(*Server)

// WithSessionTTL sets the idle session lifetime (0 disables expiry).
func WithSessionTTL(ttl time.Duration) Option {
	return func(s *Server) { s.ttl = ttl }
}

// WithSessionShards sets the session store's shard count.
func WithSessionShards(n int) Option {
	return func(s *Server) { s.shards = n }
}

// WithoutPageCache makes the server weave every page per request
// instead of serving from the woven-page cache (diagnostics and
// benchmark baselines).
func WithoutPageCache() Option {
	return func(s *Server) { s.useCache = false }
}

// withClock injects a fake clock for TTL tests.
func withClock(now func() time.Time) Option {
	return func(s *Server) { s.now = now }
}

// New returns a server over the given application.
func New(app *core.App, opts ...Option) *Server {
	s := &Server{
		app:      app,
		useCache: true,
		ttl:      DefaultSessionTTL,
		shards:   DefaultSessionShards,
	}
	for _, opt := range opts {
		opt(s)
	}
	s.sessions = newSessionStore(s.shards, s.ttl, s.now)
	return s
}

// EvictExpiredSessions drops every session idle past its TTL and
// returns how many were evicted. Expired sessions are also dropped
// lazily on access; a long-running server calls this periodically
// (StartJanitor does so on a ticker) so abandoned sessions cannot
// accumulate between visits.
func (s *Server) EvictExpiredSessions() int { return s.sessions.evictExpired() }

// StartJanitor begins sweeping expired sessions every interval in a
// background goroutine and returns a stop function (idempotent). Wire
// the stop into the HTTP server's shutdown (cmd/navserve registers it
// with RegisterOnShutdown) so the sweeper does not outlive the server.
func (s *Server) StartJanitor(interval time.Duration) (stop func()) {
	done := make(chan struct{})
	ticker := time.NewTicker(interval)
	go func() {
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				s.sessions.evictExpired()
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	path := strings.TrimPrefix(r.URL.Path, "/")
	switch {
	case path == "":
		s.serveSiteMap(w)
	case path == "links.xml":
		s.serveXML(w, "links.xml")
	case strings.HasPrefix(path, "data/"):
		s.serveXML(w, strings.TrimPrefix(path, "data/"))
	case path == "session":
		s.serveSession(w, r)
	case path == "arcs":
		s.serveArcs(w, r)
	case strings.HasPrefix(path, "go/"):
		s.serveTraversal(w, r, strings.TrimPrefix(path, "go/"))
	case strings.HasSuffix(path, ".html"):
		s.servePage(w, r, path)
	default:
		http.NotFound(w, r)
	}
}

// serveSiteMap lists every resolved context with a link to its entry.
func (s *Server) serveSiteMap(w http.ResponseWriter) {
	var sb strings.Builder
	sb.WriteString("<!DOCTYPE html>\n<html><head><title>Site map</title></head><body>\n")
	sb.WriteString("<h1>Navigational contexts</h1>\n<ul>\n")
	var names []string
	for _, rc := range s.app.Resolved().Contexts {
		names = append(names, rc.Name)
	}
	sort.Strings(names)
	for _, name := range names {
		rc := s.app.Resolved().Context(name)
		entry := navigation.HubID
		if !rc.Def.Access.HasHub() && len(rc.Members) > 0 {
			entry = rc.Members[0].ID()
		}
		fmt.Fprintf(&sb, "<li><a href=\"/%s\">%s</a> (%d members, %s)</li>\n",
			core.PagePath(name, entry), name, len(rc.Members), rc.Def.Access.Kind())
	}
	sb.WriteString("</ul>\n<p><a href=\"/links.xml\">links.xml</a></p>\n</body></html>\n")
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write([]byte(sb.String()))
}

// serveXML serves a repository document (data file or linkbase).
func (s *Server) serveXML(w http.ResponseWriter, uri string) {
	doc, err := s.app.Repository().Get(uri)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/xml; charset=utf-8")
	_, _ = w.Write([]byte(doc.IndentedString()))
}

// servePage resolves /{family}/{group...}/{node}.html to a woven page and
// moves the visitor's session there.
func (s *Server) servePage(w http.ResponseWriter, r *http.Request, path string) {
	contextName, nodeID, err := splitPagePath(path)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	render := s.app.RenderPage
	if s.useCache {
		render = s.app.RenderPageCached
	}
	page, err := render(contextName, nodeID)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	sess := s.session(w, r)
	if err := sess.EnterContext(contextName, nodeID); err != nil {
		// RenderPage accepted the pair, so the session must too;
		// failing here indicates a model/session mismatch.
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write([]byte(page.HTML))
}

// serveTraversal performs a session-relative navigation action and
// redirects to the resulting page — Next answered per the visitor's
// current context, the §2 semantics over HTTP.
func (s *Server) serveTraversal(w http.ResponseWriter, r *http.Request, action string) {
	sess := s.session(w, r)
	if sess.Context() == nil {
		http.Error(w, "no current context; visit a page first", http.StatusConflict)
		return
	}
	var err error
	switch action {
	case "next":
		err = sess.Next()
	case "prev":
		err = sess.Prev()
	case "up":
		err = sess.Up()
	case "select":
		node := r.URL.Query().Get("node")
		if node == "" {
			http.Error(w, "select requires ?node=", http.StatusBadRequest)
			return
		}
		err = sess.Select(node)
	case "switch":
		ctx := r.URL.Query().Get("context")
		if ctx == "" {
			http.Error(w, "switch requires ?context=", http.StatusBadRequest)
			return
		}
		err = sess.SwitchContext(ctx)
	default:
		http.Error(w, fmt.Sprintf("unknown action %q", action), http.StatusNotFound)
		return
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	// One consistent snapshot: reading context and node separately
	// could mix states from two concurrent traversals on this session.
	rc, nodeID := sess.Location()
	target := "/" + core.PagePath(rc.Name, nodeID)
	http.Redirect(w, r, target, http.StatusSeeOther)
}

// splitPagePath turns "ByAuthor/picasso/guitar.html" into
// ("ByAuthor:picasso", "guitar"); the final "index.html" maps to the hub.
func splitPagePath(path string) (contextName, nodeID string, err error) {
	segs := strings.Split(strings.TrimSuffix(path, ".html"), "/")
	if len(segs) < 2 {
		return "", "", fmt.Errorf("server: page path %q too short", path)
	}
	nodeID = segs[len(segs)-1]
	if nodeID == "index" {
		nodeID = navigation.HubID
	}
	contextName = strings.Join(segs[:len(segs)-1], ":")
	return contextName, nodeID, nil
}

// session returns the requester's navigation session, creating it (and
// setting the cookie) on first contact. The cookie is HttpOnly and
// SameSite=Lax: the session id is never readable from page scripts and
// is not sent on cross-site subrequests.
func (s *Server) session(w http.ResponseWriter, r *http.Request) *navigation.Session {
	id := ""
	if c, err := r.Cookie(sessionCookie); err == nil && c.Value != "" {
		id = c.Value
	}
	if sess := s.sessions.get(id); sess != nil {
		return sess
	}
	id = newSessionID()
	http.SetCookie(w, &http.Cookie{
		Name:     sessionCookie,
		Value:    id,
		Path:     "/",
		HttpOnly: true,
		SameSite: http.SameSiteLaxMode,
	})
	sess := navigation.NewSession(s.app.Resolved())
	s.sessions.put(id, sess)
	return sess
}

// serveSession returns the requester's visit trail as JSON — the context
// history that makes navigation context-dependent.
func (s *Server) serveSession(w http.ResponseWriter, r *http.Request) {
	visits := []navigation.Visit{}
	if c, err := r.Cookie(sessionCookie); err == nil {
		if sess := s.sessions.get(c.Value); sess != nil {
			visits = sess.History()
			if visits == nil {
				visits = []navigation.Visit{}
			}
		}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(visits)
}

// arcJSON is the wire form of one outbound traversal arc.
type arcJSON struct {
	Context string `json:"context"`
	Kind    string `json:"kind"`
	To      string `json:"to"`
	Label   string `json:"label"`
	Href    string `json:"href"`
}

// serveArcs answers the XLink-agent introspection query "which traversals
// begin at this node?": GET /arcs?node=ID returns, per containing
// context, the outbound arcs as JSON.
func (s *Server) serveArcs(w http.ResponseWriter, r *http.Request) {
	nodeID := r.URL.Query().Get("node")
	if nodeID == "" {
		http.Error(w, "arcs requires ?node=", http.StatusBadRequest)
		return
	}
	containing := s.app.Resolved().ContextsContaining(nodeID)
	if len(containing) == 0 {
		http.Error(w, fmt.Sprintf("no context contains node %q", nodeID), http.StatusNotFound)
		return
	}
	arcs := []arcJSON{}
	for _, rc := range containing {
		for _, e := range rc.OutEdges(nodeID) {
			arcs = append(arcs, arcJSON{
				Context: rc.Name,
				Kind:    string(e.Kind),
				To:      e.To,
				Label:   e.Label,
				Href:    "/" + core.PagePath(rc.Name, e.To),
			})
		}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(arcs)
}

// SessionCount reports the number of live tracked sessions (for tests
// and diagnostics).
func (s *Server) SessionCount() int { return s.sessions.len() }

func newSessionID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failure is unrecoverable for session issuance;
		// a constant fallback would collide, so fail loudly.
		panic(fmt.Sprintf("server: session id entropy unavailable: %v", err))
	}
	return hex.EncodeToString(b[:])
}
