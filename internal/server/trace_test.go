package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/museum"
	"repro/internal/navigation"
	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/storage/faultstore"
)

// tracedServer builds a server with the given tracer config, an API
// token (so /api/v1/traces answers) and any extra options.
func tracedServer(t *testing.T, cfg obs.TraceConfig, extra ...Option) (*Server, *httptest.Server) {
	t.Helper()
	app, err := core.NewApp(museum.PaperStore(), museum.Model(navigation.IndexedGuidedTour{}))
	if err != nil {
		t.Fatal(err)
	}
	opts := append([]Option{
		WithTracing(obs.NewTracer(cfg)),
		WithAPIToken(testToken),
	}, extra...)
	srv := New(app, opts...)
	t.Cleanup(func() { srv.Close() })
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

// getTraces fetches /api/v1/traces with the test bearer token.
func getTraces(t *testing.T, ts *httptest.Server, query string) api.TracesResponse {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, ts.URL+api.BasePath+"/traces"+query, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer "+testToken)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET /traces%s = %d: %s", query, resp.StatusCode, body)
	}
	var out api.TracesResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestTracedRequestSampled: with SampleEvery=1 a page GET is kept,
// carries a Traceparent response header, and its ring record joins the
// header's trace id with a non-empty phase breakdown.
func TestTracedRequestSampled(t *testing.T) {
	_, ts := tracedServer(t, obs.TraceConfig{SampleEvery: 1, RingSize: 16})
	// Two GETs: the first weaves the page (a cache-miss trace), the
	// second is the steady-state cache hit the assertion reads.
	var resp *http.Response
	var err error
	for i := 0; i < 2; i++ {
		resp, err = ts.Client().Get(ts.URL + "/ByAuthor/picasso/guitar.html")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("page GET = %d", resp.StatusCode)
		}
	}
	tp := resp.Header.Get("Traceparent")
	if len(tp) != 55 {
		t.Fatalf("Traceparent = %q, want a 55-byte W3C header", tp)
	}
	wantID := tp[3:35]

	out := getTraces(t, ts, "")
	if !out.Enabled {
		t.Fatal("traces response says tracing is disabled")
	}
	var tr *api.Trace
	for i := range out.Traces {
		if out.Traces[i].TraceID == wantID {
			tr = &out.Traces[i]
			break
		}
	}
	if tr == nil {
		t.Fatalf("trace %s not in ring (%d retained)", wantID, len(out.Traces))
	}
	if tr.Route != "page" || tr.Path != "/ByAuthor/picasso/guitar.html" || tr.Status != http.StatusOK {
		t.Errorf("trace = %s %s %d, want page /ByAuthor/picasso/guitar.html 200", tr.Route, tr.Path, tr.Status)
	}
	if !tr.Sampled {
		t.Error("trace not marked sampled under SampleEvery=1")
	}
	if len(tr.Spans) == 0 {
		t.Fatal("trace has no spans")
	}
	phases := map[string]bool{}
	var sum int64
	for _, sp := range tr.Spans {
		phases[sp.Phase] = true
		sum += sp.DurationNS
	}
	for _, want := range []string{"admit", "cache-hit", "response-write"} {
		if !phases[want] {
			t.Errorf("trace missing phase %q (got %v)", want, phases)
		}
	}
	if total := int64(tr.DurationSeconds * 1e9); sum > total {
		t.Errorf("phase durations sum to %dns, more than the request total %dns", sum, total)
	}
}

// TestTraceSlowCaptureEndToEnd: sampling off, a fault-injected store
// stalls the synchronous session write past the slow threshold, and the
// request surfaces through ?slow=1 with the stall attributed to the
// storage-op phase.
func TestTraceSlowCaptureEndToEnd(t *testing.T) {
	fst := faultstore.New(storage.NewMem(), 1)
	if err := fst.Configure("put:latency=30ms"); err != nil {
		t.Fatal(err)
	}
	_, ts := tracedServer(t,
		obs.TraceConfig{SampleEvery: 0, SlowThreshold: 10 * time.Millisecond, RingSize: 16},
		WithPersistence(fst), WithSyncPersistence())

	// The linkbase GET does no session write, so it stays under the
	// threshold — proof the slow filter is capturing, not logging all.
	for _, path := range []string{"/links.xml", "/ByAuthor/picasso/guitar.html"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	out := getTraces(t, ts, "?slow=1")
	if len(out.Traces) != 1 {
		t.Fatalf("?slow=1 returned %d traces, want exactly the stalled page GET", len(out.Traces))
	}
	tr := out.Traces[0]
	if !tr.Slow || tr.Sampled {
		t.Errorf("trace slow=%v sampled=%v, want slow-captured only", tr.Slow, tr.Sampled)
	}
	if tr.Route != "page" {
		t.Errorf("slow trace route = %q, want page", tr.Route)
	}
	var storageNS, sum int64
	for _, sp := range tr.Spans {
		sum += sp.DurationNS
		if sp.Phase == "storage-op" {
			storageNS = sp.DurationNS
		}
	}
	if storageNS < (25 * time.Millisecond).Nanoseconds() {
		t.Errorf("storage-op span = %dns, want the ~30ms injected stall", storageNS)
	}
	if total := int64(tr.DurationSeconds * 1e9); sum > total {
		t.Errorf("phase durations sum to %dns, more than the request total %dns", sum, total)
	}
}

// TestTraceparentAdoption: a caller-sent traceparent is adopted — the
// response echoes the caller's trace id with a fresh span id, and the
// kept record carries the caller's span as its parent.
func TestTraceparentAdoption(t *testing.T) {
	const parent = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	_, ts := tracedServer(t, obs.TraceConfig{SampleEvery: 1, RingSize: 16})
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/links.xml", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Traceparent", parent)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	tp := resp.Header.Get("Traceparent")
	if len(tp) != 55 || tp[3:35] != parent[3:35] {
		t.Fatalf("response Traceparent = %q, want the caller's trace id %s", tp, parent[3:35])
	}
	if tp[36:52] == parent[36:52] {
		t.Error("response span id equals the caller's parent span id; want a fresh span")
	}
	out := getTraces(t, ts, "")
	for _, tr := range out.Traces {
		if tr.TraceID == parent[3:35] {
			if tr.ParentSpanID != parent[36:52] {
				t.Errorf("parent_span_id = %q, want %q", tr.ParentSpanID, parent[36:52])
			}
			return
		}
	}
	t.Fatal("adopted trace not found in the ring")
}

// TestShedCarriesTraceparent: the 503 shed path sets the trace-context
// header so a Retry-After burst is joinable to its traces.
func TestShedCarriesTraceparent(t *testing.T) {
	const tp = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	rec := httptest.NewRecorder()
	shed(rec, tp)
	if got := rec.Header().Get("Traceparent"); got != tp {
		t.Errorf("Traceparent = %q, want %q", got, tp)
	}
	if rec.Header().Get("Retry-After") != "1" {
		t.Error("shed lost its Retry-After header")
	}
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("status = %d, want 503", rec.Code)
	}

	rec = httptest.NewRecorder()
	shed(rec, "")
	if got := rec.Header().Get("Traceparent"); got != "" {
		t.Errorf("untraced shed set Traceparent %q", got)
	}
}

// TestAPIErrorCarriesTraceID: a structured control-plane error stamps
// the request's trace id into the body, matching the response header.
func TestAPIErrorCarriesTraceID(t *testing.T) {
	_, ts := tracedServer(t, obs.TraceConfig{SampleEvery: 1, RingSize: 16})
	req, err := http.NewRequest(http.MethodGet, ts.URL+api.BasePath+"/model", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer wrong-token")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("status = %d, want 401", resp.StatusCode)
	}
	tp := resp.Header.Get("Traceparent")
	if len(tp) != 55 {
		t.Fatalf("API error response Traceparent = %q", tp)
	}
	var eb api.ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if eb.Error.TraceID != tp[3:35] {
		t.Errorf("error body trace_id = %q, want %q", eb.Error.TraceID, tp[3:35])
	}
}

// TestAPITracesValidation: malformed query parameters answer 400, and a
// server without a tracer reports enabled=false instead of an empty
// ring.
func TestAPITracesValidation(t *testing.T) {
	_, ts := tracedServer(t, obs.TraceConfig{SampleEvery: 1, RingSize: 16})
	for _, query := range []string{"?limit=abc", "?limit=0", "?limit=-3", "?slow=maybe"} {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+api.BasePath+"/traces"+query, nil)
		req.Header.Set("Authorization", "Bearer "+testToken)
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET /traces%s = %d, want 400", query, resp.StatusCode)
		}
	}

	// limit clamps the listing.
	for i := 0; i < 5; i++ {
		resp, err := ts.Client().Get(fmt.Sprintf("%s/links.xml?i=%d", ts.URL, i))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if out := getTraces(t, ts, "?limit=2"); len(out.Traces) != 2 {
		t.Errorf("?limit=2 returned %d traces", len(out.Traces))
	}

	// No tracer: enabled=false, not a silent empty ring.
	app, err := core.NewApp(museum.PaperStore(), museum.Model(navigation.IndexedGuidedTour{}))
	if err != nil {
		t.Fatal(err)
	}
	bare := New(app, WithAPIToken(testToken))
	bareTS := httptest.NewServer(bare)
	defer bareTS.Close()
	if out := getTraces(t, bareTS, ""); out.Enabled {
		t.Error("tracerless server reports tracing enabled")
	}
}

// TestUnsampledRequestSkipsHeader: with sampling effectively off and no
// caller trace context, the hot serve emits no Traceparent header — the
// allocation-free idle contract.
func TestUnsampledRequestSkipsHeader(t *testing.T) {
	_, ts := tracedServer(t, obs.TraceConfig{SampleEvery: 0, SlowThreshold: time.Hour, RingSize: 16})
	resp, err := ts.Client().Get(ts.URL + "/links.xml")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if tp := resp.Header.Get("Traceparent"); tp != "" {
		t.Errorf("unsampled serve set Traceparent %q", tp)
	}
}
