package server

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/navigation"
	"repro/internal/obs"
	"repro/internal/storage"
)

// discardWriter is an http.ResponseWriter that throws the response away
// without httptest.ResponseRecorder's bookkeeping, so serve benchmarks
// measure the serve path rather than the recorder.
type discardWriter struct{ h http.Header }

func (w *discardWriter) Header() http.Header         { return w.h }
func (w *discardWriter) Write(p []byte) (int, error) { return len(p), nil }
func (w *discardWriter) WriteHeader(int)             {}

// reset clears the headers between requests, reusing the map.
func (w *discardWriter) reset() {
	for k := range w.h {
		delete(w.h, k)
	}
}

// benchRequest builds a GET for path carrying the session cookie.
func benchRequest(path, cookie string) *http.Request {
	req := httptest.NewRequest(http.MethodGet, path, nil)
	if cookie != "" {
		req.AddCookie(&http.Cookie{Name: sessionCookie, Value: cookie})
	}
	return req
}

// benchSession performs one recorded request and returns the session
// cookie it was issued, so the timed loop reuses one visitor.
func benchSession(b *testing.B, srv *Server, path string) string {
	b.Helper()
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	if rec.Code != http.StatusOK {
		b.Fatalf("warmup GET %s = %d", path, rec.Code)
	}
	for _, c := range rec.Result().Cookies() {
		if c.Name == sessionCookie {
			return c.Value
		}
	}
	b.Fatal("no session cookie issued")
	return ""
}

// BenchmarkServeHotCachePage is the hot serve path: the page is already
// woven and cached, the visitor known — per-request cost is validator
// and body writing plus the session step.
func BenchmarkServeHotCachePage(b *testing.B) {
	srv := New(benchApp(b))
	cookie := benchSession(b, srv, "/ByAuthor/picasso/guitar.html")
	req := benchRequest("/ByAuthor/picasso/guitar.html", cookie)
	w := &discardWriter{h: http.Header{}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.reset()
		srv.ServeHTTP(w, req)
	}
}

// BenchmarkServeHotCachePageTraced is the same hot path with tracing
// enabled and the request unsampled — the tracer's steady-state cost:
// a pooled slot, one atomic add for the sampling decision, clock reads
// per phase, no allocations (guarded by TestServeHotPathAllocsTraced).
func BenchmarkServeHotCachePageTraced(b *testing.B) {
	srv := New(benchApp(b), WithTracing(obs.NewTracer(obs.TraceConfig{
		SampleEvery: 0, SlowThreshold: time.Hour, RingSize: 64,
	})))
	cookie := benchSession(b, srv, "/ByAuthor/picasso/guitar.html")
	req := benchRequest("/ByAuthor/picasso/guitar.html", cookie)
	w := &discardWriter{h: http.Header{}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.reset()
		srv.ServeHTTP(w, req)
	}
}

// BenchmarkServeHotCachePageLimited is the same hot path with an
// ACTIVE in-flight bound: the delta against BenchmarkServeHotCachePage
// is the limiter's whole cost — two uncontended atomic adds, no
// allocations (guarded by TestLimiterActiveAddsNoAllocs).
func BenchmarkServeHotCachePageLimited(b *testing.B) {
	srv := New(benchApp(b), WithMaxInflight(1024))
	cookie := benchSession(b, srv, "/ByAuthor/picasso/guitar.html")
	req := benchRequest("/ByAuthor/picasso/guitar.html", cookie)
	w := &discardWriter{h: http.Header{}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.reset()
		srv.ServeHTTP(w, req)
	}
}

// BenchmarkServeHotCachePageParallel is the same hot path under
// concurrent visitors, each with their own session.
func BenchmarkServeHotCachePageParallel(b *testing.B) {
	srv := New(benchApp(b))
	const visitors = 64
	cookies := make([]string, visitors)
	for i := range cookies {
		cookies[i] = benchSession(b, srv, "/ByAuthor/picasso/guitar.html")
	}
	var next atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		cookie := cookies[next.Add(1)%visitors]
		req := benchRequest("/ByAuthor/picasso/guitar.html", cookie)
		w := &discardWriter{h: http.Header{}}
		for pb.Next() {
			w.reset()
			srv.ServeHTTP(w, req)
		}
	})
}

// BenchmarkServeLinksXML serves the linkbase document repeatedly — the
// document every XLink-aware agent fetches first.
func BenchmarkServeLinksXML(b *testing.B) {
	srv := New(benchApp(b))
	req := benchRequest("/links.xml", "")
	w := &discardWriter{h: http.Header{}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.reset()
		srv.ServeHTTP(w, req)
	}
}

// BenchmarkServeDataDoc serves one node data document repeatedly.
func BenchmarkServeDataDoc(b *testing.B) {
	srv := New(benchApp(b))
	req := benchRequest("/data/guitar.xml", "")
	w := &discardWriter{h: http.Header{}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.reset()
		srv.ServeHTTP(w, req)
	}
}

// BenchmarkServeAfterMutationOtherFamily mutates the ByAuthor access
// structure and then serves three ByMovement pages per iteration. A
// mutation to one context family should not cost the re-weave of
// another family's pages.
func BenchmarkServeAfterMutationOtherFamily(b *testing.B) {
	app := benchApp(b)
	srv := New(app)
	cookie := benchSession(b, srv, "/ByMovement/cubism/guitar.html")
	reqs := []*http.Request{
		benchRequest("/ByMovement/cubism/guitar.html", cookie),
		benchRequest("/ByMovement/cubism/avignon.html", cookie),
		benchRequest("/ByMovement/surrealism/memory.html", cookie),
	}
	w := &discardWriter{h: http.Header{}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// The mutation itself is untimed: the benchmark measures what
		// serving costs right after it — re-weaves under wholesale
		// invalidation, cache hits under dependency-aware invalidation.
		b.StopTimer()
		var as navigation.AccessStructure = navigation.Index{}
		if i%2 == 0 {
			as = navigation.IndexedGuidedTour{}
		}
		if err := app.SetAccessStructure("ByAuthor", as); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		for _, req := range reqs {
			w.reset()
			srv.ServeHTTP(w, req)
		}
	}
}

// benchStepWithPersistence measures one navigation step over HTTP with
// session persistence on: traversal, session move, durable save. The
// visitor is rotated periodically so the trail (and the marshalled
// record) stays bounded and the benchmark steady-state.
func benchStepWithPersistence(b *testing.B, opts ...Option) {
	st := storage.NewMem()
	defer st.Close()
	srv := New(benchApp(b), append([]Option{WithPersistence(st)}, opts...)...)
	defer srv.Close()
	cookie := benchSession(b, srv, "/ByAuthor/picasso/avignon.html")
	next := benchRequest("/go/next", cookie)
	prev := benchRequest("/go/prev", cookie)
	w := &discardWriter{h: http.Header{}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%512 == 511 {
			b.StopTimer()
			cookie = benchSession(b, srv, "/ByAuthor/picasso/avignon.html")
			next = benchRequest("/go/next", cookie)
			prev = benchRequest("/go/prev", cookie)
			b.StartTimer()
		}
		w.reset()
		if i%2 == 0 {
			srv.ServeHTTP(w, next)
		} else {
			srv.ServeHTTP(w, prev)
		}
	}
}

// BenchmarkStepWithPersistenceSync is the synchronous marshal+Put write
// path on every step (the WithSyncPersistence escape hatch).
func BenchmarkStepWithPersistenceSync(b *testing.B) {
	benchStepWithPersistence(b, WithSyncPersistence())
}

// BenchmarkStepWithPersistenceWriteBehind is the default write-behind
// path: the step marks the session dirty and the background flusher
// does the marshalling and writing off-request.
func BenchmarkStepWithPersistenceWriteBehind(b *testing.B) {
	benchStepWithPersistence(b)
}
