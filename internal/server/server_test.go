package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/museum"
	"repro/internal/navigation"
)

func testServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	app, err := core.NewApp(museum.PaperStore(), museum.Model(navigation.IndexedGuidedTour{}))
	if err != nil {
		t.Fatal(err)
	}
	srv := New(app)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

func get(t *testing.T, client *http.Client, url string) (int, string) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestSiteMap(t *testing.T) {
	_, ts := testServer(t)
	code, body := get(t, ts.Client(), ts.URL+"/")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	for _, want := range []string{
		"ByAuthor:picasso",
		"ByMovement:cubism",
		`href="/ByAuthor/picasso/index.html"`,
		"links.xml",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("site map missing %q:\n%s", want, body)
		}
	}
}

func TestServePage(t *testing.T) {
	_, ts := testServer(t)
	code, body := get(t, ts.Client(), ts.URL+"/ByAuthor/picasso/guitar.html")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	for _, want := range []string{"<h1>Guitar</h1>", "nav-next", "nav-prev", "nav-up"} {
		if !strings.Contains(body, want) {
			t.Errorf("page missing %q", want)
		}
	}
	// Hub page.
	code, body = get(t, ts.Client(), ts.URL+"/ByAuthor/picasso/index.html")
	if code != http.StatusOK || !strings.Contains(body, "Index of ByAuthor:picasso") {
		t.Errorf("hub: %d %s", code, body)
	}
}

func TestServeXMLDocuments(t *testing.T) {
	_, ts := testServer(t)
	code, body := get(t, ts.Client(), ts.URL+"/links.xml")
	if code != http.StatusOK || !strings.Contains(body, "xlink") {
		t.Errorf("links.xml: %d", code)
	}
	code, body = get(t, ts.Client(), ts.URL+"/data/guitar.xml")
	if code != http.StatusOK || !strings.Contains(body, "<title>Guitar</title>") {
		t.Errorf("data doc: %d %s", code, body)
	}
	code, _ = get(t, ts.Client(), ts.URL+"/data/missing.xml")
	if code != http.StatusNotFound {
		t.Errorf("missing data doc status = %d", code)
	}
}

func TestNotFoundPaths(t *testing.T) {
	_, ts := testServer(t)
	for _, path := range []string{
		"/Nowhere/at/all.html",
		"/ByAuthor/picasso/memory.html", // not a member of this context
		"/short.html",
		"/unknown",
	} {
		code, _ := get(t, ts.Client(), ts.URL+path)
		if code != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, code)
		}
	}
}

// TestSessionTrail drives the paper's museum walk over HTTP and checks
// the session endpoint returns the context-qualified history.
func TestSessionTrail(t *testing.T) {
	srv, ts := testServer(t)
	jar := newCookieJar()
	client := &http.Client{Jar: jar}

	for _, path := range []string{
		"/ByAuthor/picasso/index.html",
		"/ByAuthor/picasso/guitar.html",
		"/ByAuthor/picasso/guernica.html",
		"/ByMovement/surrealism/guernica.html", // the context switch
		"/ByMovement/surrealism/memory.html",
	} {
		if code, _ := get(t, client, ts.URL+path); code != http.StatusOK {
			t.Fatalf("GET %s = %d", path, code)
		}
	}
	_, body := get(t, client, ts.URL+"/session")
	var visits []navigation.Visit
	if err := json.Unmarshal([]byte(body), &visits); err != nil {
		t.Fatalf("session JSON: %v in %q", err, body)
	}
	if len(visits) != 5 {
		t.Fatalf("visits = %d, want 5: %+v", len(visits), visits)
	}
	if visits[2].Context != "ByAuthor:picasso" || visits[2].NodeID != "guernica" {
		t.Errorf("visit[2] = %+v", visits[2])
	}
	if visits[3].Context != "ByMovement:surrealism" || visits[3].NodeID != "guernica" {
		t.Errorf("visit[3] (context switch) = %+v", visits[3])
	}
	if srv.SessionCount() != 1 {
		t.Errorf("sessions = %d, want 1", srv.SessionCount())
	}
}

func TestSessionWithoutCookie(t *testing.T) {
	_, ts := testServer(t)
	_, body := get(t, ts.Client(), ts.URL+"/session")
	if strings.TrimSpace(body) != "[]" {
		t.Errorf("fresh session = %q, want []", body)
	}
}

func TestSeparateSessionsSeparateTrails(t *testing.T) {
	srv, ts := testServer(t)
	alice := &http.Client{Jar: newCookieJar()}
	bob := &http.Client{Jar: newCookieJar()}
	get(t, alice, ts.URL+"/ByAuthor/picasso/guitar.html")
	get(t, bob, ts.URL+"/ByMovement/cubism/guitar.html")
	get(t, bob, ts.URL+"/ByMovement/cubism/avignon.html")

	_, aliceBody := get(t, alice, ts.URL+"/session")
	var aliceVisits []navigation.Visit
	_ = json.Unmarshal([]byte(aliceBody), &aliceVisits)
	if len(aliceVisits) != 1 || aliceVisits[0].Context != "ByAuthor:picasso" {
		t.Errorf("alice visits = %+v", aliceVisits)
	}
	_, bobBody := get(t, bob, ts.URL+"/session")
	var bobVisits []navigation.Visit
	_ = json.Unmarshal([]byte(bobBody), &bobVisits)
	if len(bobVisits) != 2 || bobVisits[0].Context != "ByMovement:cubism" {
		t.Errorf("bob visits = %+v", bobVisits)
	}
	if srv.SessionCount() != 2 {
		t.Errorf("sessions = %d, want 2", srv.SessionCount())
	}
}

// cookieJar is a minimal cookie jar for tests; it keeps the session
// cookie handling transparent.
type cookieJar struct {
	cookies map[string]*http.Cookie
}

func newCookieJar() *cookieJar { return &cookieJar{cookies: map[string]*http.Cookie{}} }

func (j *cookieJar) SetCookies(_ *url.URL, cookies []*http.Cookie) {
	for _, c := range cookies {
		j.cookies[c.Name] = c
	}
}

func (j *cookieJar) Cookies(_ *url.URL) []*http.Cookie {
	var out []*http.Cookie
	for _, c := range j.cookies {
		out = append(out, c)
	}
	return out
}
