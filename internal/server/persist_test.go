package server

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/museum"
	"repro/internal/navigation"
	"repro/internal/storage"
)

// newTestStore opens a storage backend by name, closing it with the test.
func newTestStore(t *testing.T, backend string) storage.Store {
	t.Helper()
	var st storage.Store
	switch backend {
	case "mem":
		st = storage.NewMem()
	case "file":
		var err error
		st, err = storage.OpenFile(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
	default:
		t.Fatalf("unknown backend %q", backend)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// persistentServer builds a server over the paper museum backed by the
// given store. Persistence is synchronous — these tests assert exact
// store contents after individual requests, which the write-behind
// queue would make racy (flush_test.go covers that path).
func persistentServer(t *testing.T, st storage.Store, opts ...Option) (*Server, *httptest.Server) {
	t.Helper()
	app, err := core.NewApp(museum.PaperStore(), museum.Model(navigation.IndexedGuidedTour{}))
	if err != nil {
		t.Fatal(err)
	}
	srv := New(app, append([]Option{WithPersistence(st), WithSyncPersistence()}, opts...)...)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// doGet performs a GET with an explicit cookie header (so one visitor
// identity can span two test servers) and returns status, body and any
// session cookie that was set.
func doGet(t *testing.T, ts *httptest.Server, path, cookie string) (int, string, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cookie != "" {
		req.AddCookie(&http.Cookie{Name: sessionCookie, Value: cookie})
	}
	client := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	setCookie := ""
	for _, c := range resp.Cookies() {
		if c.Name == sessionCookie {
			setCookie = c.Value
		}
	}
	return resp.StatusCode, string(body), setCookie
}

// TestKillAndRestartResumesTrail is the acceptance scenario: a server
// using the file backend is stopped mid-session and restarted; the same
// cookie resumes the visitor's context trail and /go/next answers per
// the restored context.
func TestKillAndRestartResumesTrail(t *testing.T) {
	dir := t.TempDir()
	st, err := storage.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}

	_, ts := persistentServer(t, st)
	// Enter the guided tour at its first painting (ByAuthor:picasso is
	// ordered by year: avignon 1907, guitar 1913, guernica 1937) and
	// step once, leaving the visitor standing on guitar.
	code, _, cookie := doGet(t, ts, "/ByAuthor/picasso/avignon.html", "")
	if code != http.StatusOK || cookie == "" {
		t.Fatalf("first visit: code=%d cookie=%q", code, cookie)
	}
	if code, _, _ := doGet(t, ts, "/go/next", cookie); code != http.StatusSeeOther {
		t.Fatalf("/go/next before restart: code=%d", code)
	}
	code, _, _ = doGet(t, ts, "/session", cookie)
	if code != http.StatusOK {
		t.Fatalf("/session before restart: code=%d", code)
	}
	_, preRestart, _ := doGet(t, ts, "/session", cookie)

	// Kill: close the HTTP server and the store (the final flush).
	ts.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: a brand-new app, server and store handle over the same
	// directory. Nothing in memory survives — only the store.
	st2, err := storage.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv2, ts2 := persistentServer(t, st2)
	if n := srv2.SessionCount(); n != 0 {
		t.Fatalf("restarted server already tracks %d sessions", n)
	}

	// The same cookie must resume the pre-restart trail...
	code, postRestart, _ := doGet(t, ts2, "/session", cookie)
	if code != http.StatusOK {
		t.Fatalf("/session after restart: code=%d", code)
	}
	if postRestart != preRestart {
		t.Errorf("trail lost across restart:\n before: %s after:  %s", preRestart, postRestart)
	}
	var visits []navigation.Visit
	if err := json.Unmarshal([]byte(postRestart), &visits); err != nil {
		t.Fatal(err)
	}
	if len(visits) != 2 || visits[1].Context != "ByAuthor:picasso" {
		t.Errorf("restored visits = %+v", visits)
	}

	// ...and /go/next must answer per the restored context: the visitor
	// stood on the second painting of ByAuthor:picasso, so Next goes to
	// the third (or wherever that tour's edge leads) — crucially, a
	// redirect within the same context, not a 409.
	code, _, _ = doGet(t, ts2, "/go/next", cookie)
	if code != http.StatusSeeOther {
		t.Fatalf("/go/next after restart: code=%d, want 303", code)
	}
	req, _ := http.NewRequest(http.MethodGet, ts2.URL+"/go/up", nil)
	req.AddCookie(&http.Cookie{Name: sessionCookie, Value: cookie})
	client := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if loc := resp.Header.Get("Location"); !strings.HasPrefix(loc, "/ByAuthor/picasso/") {
		t.Errorf("restored session navigates in %q, want ByAuthor:picasso", loc)
	}
}

// TestKillAndRestartResumesHistory: the navigation history — including
// a mid-history cursor with live forward entries — survives the
// persist→rehydrate cycle, so a visitor who went Back before the crash
// can still go Forward after the restart.
func TestKillAndRestartResumesHistory(t *testing.T) {
	dir := t.TempDir()
	st, err := storage.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}

	_, ts := persistentServer(t, st)
	code, _, cookie := doGet(t, ts, "/ByAuthor/picasso/avignon.html", "")
	if code != http.StatusOK || cookie == "" {
		t.Fatalf("first visit: code=%d cookie=%q", code, cookie)
	}
	doGet(t, ts, "/ByAuthor/picasso/guitar.html", cookie)
	doGet(t, ts, "/ByAuthor/picasso/guernica.html", cookie)
	if code, _, _ := doGet(t, ts, "/go/back", cookie); code != http.StatusSeeOther {
		t.Fatalf("/go/back before restart: code=%d", code)
	}
	_, preRestart, _ := doGet(t, ts, "/history", cookie)

	ts.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := storage.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, ts2 := persistentServer(t, st2)

	code, postRestart, _ := doGet(t, ts2, "/history", cookie)
	if code != http.StatusOK {
		t.Fatalf("/history after restart: code=%d", code)
	}
	if postRestart != preRestart {
		t.Errorf("history lost across restart:\n before: %s after:  %s", preRestart, postRestart)
	}
	// The rehydrated session is mid-history: Forward must reach the
	// entry the pre-crash Back stepped away from.
	code, _, _ = doGet(t, ts2, "/go/forward", cookie)
	if code != http.StatusSeeOther {
		t.Fatalf("/go/forward after restart: code=%d, want 303", code)
	}
	req, _ := http.NewRequest(http.MethodGet, ts2.URL+"/go/forward", nil)
	req.AddCookie(&http.Cookie{Name: sessionCookie, Value: cookie})
	client := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// The first post-restart Forward consumed the only forward entry.
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("second /go/forward = %d, want 409", resp.StatusCode)
	}
}

// TestRehydrationIsLazy: the restarted server rehydrates a session only
// when its cookie shows up, not at startup.
func TestRehydrationIsLazy(t *testing.T) {
	st := storage.NewMem()
	_, ts := persistentServer(t, st)
	_, _, cookie := doGet(t, ts, "/ByAuthor/picasso/guitar.html", "")
	ts.Close()

	srv2, ts2 := persistentServer(t, st)
	if n := srv2.SessionCount(); n != 0 {
		t.Fatalf("sessions rehydrated eagerly: %d", n)
	}
	doGet(t, ts2, "/session", cookie)
	if n := srv2.SessionCount(); n != 1 {
		t.Errorf("session not rehydrated on access: count=%d", n)
	}
}

// TestEvictionDeletesDurableRecord: expiring a session removes its
// record from the store, so the janitor bounds disk as well as memory.
func TestEvictionDeletesDurableRecord(t *testing.T) {
	st := storage.NewMem()
	clock := time.Now()
	now := func() time.Time { return clock }
	srv, ts := persistentServer(t, st, WithSessionTTL(time.Minute), withClock(now))
	_, _, cookie := doGet(t, ts, "/ByAuthor/picasso/guitar.html", "")
	if _, err := st.Get(sessionKeyPrefix + cookie); err != nil {
		t.Fatalf("session not persisted: %v", err)
	}
	clock = clock.Add(2 * time.Minute)
	if n := srv.EvictExpiredSessions(); n != 1 {
		t.Fatalf("evicted = %d, want 1", n)
	}
	if _, err := st.Get(sessionKeyPrefix + cookie); !errors.Is(err, storage.ErrNotFound) {
		t.Errorf("durable record survived eviction: err=%v", err)
	}
}

// TestExpiredRecordNotRehydrated: a durable record past its deadline is
// a miss (and is deleted), even though the janitor never saw it.
func TestExpiredRecordNotRehydrated(t *testing.T) {
	st := storage.NewMem()
	clock := time.Now()
	now := func() time.Time { return clock }
	_, ts := persistentServer(t, st, WithSessionTTL(time.Minute), withClock(now))
	_, _, cookie := doGet(t, ts, "/ByAuthor/picasso/guitar.html", "")
	ts.Close()

	clock = clock.Add(time.Hour)
	srv2, ts2 := persistentServer(t, st, WithSessionTTL(time.Minute), withClock(now))
	_, body, _ := doGet(t, ts2, "/session", cookie)
	if body != "[]\n" {
		t.Errorf("expired session rehydrated: %s", body)
	}
	if srv2.SessionCount() != 0 {
		t.Errorf("expired session tracked")
	}
	if _, err := st.Get(sessionKeyPrefix + cookie); !errors.Is(err, storage.ErrNotFound) {
		t.Errorf("expired record not reaped: err=%v", err)
	}
}

// TestCorruptRecordIsAMiss: garbage in the store must not take the
// server down — the visitor just starts over.
func TestCorruptRecordIsAMiss(t *testing.T) {
	st := storage.NewMem()
	if err := st.Put(sessionKeyPrefix+"deadbeef", []byte("{not json")); err != nil {
		t.Fatal(err)
	}
	_, ts := persistentServer(t, st)
	code, body, _ := doGet(t, ts, "/session", "deadbeef")
	if code != http.StatusOK || body != "[]\n" {
		t.Errorf("corrupt record: code=%d body=%q", code, body)
	}
	if _, err := st.Get(sessionKeyPrefix + "deadbeef"); !errors.Is(err, storage.ErrNotFound) {
		t.Errorf("corrupt record not deleted: err=%v", err)
	}
}

// TestOrphanedRecordIsAMiss: a stored position the current model no
// longer has (the context was renamed away) yields a fresh session.
func TestOrphanedRecordIsAMiss(t *testing.T) {
	st := storage.NewMem()
	rec := sessionRecord{State: navigation.SessionState{
		Context: "ByDecade:1930s", // not a paper-museum context
		NodeID:  "guernica",
		History: []navigation.Visit{{Context: "ByDecade:1930s", NodeID: "guernica"}},
	}}
	raw, _ := json.Marshal(rec)
	if err := st.Put(sessionKeyPrefix+"cafebabe", raw); err != nil {
		t.Fatal(err)
	}
	_, ts := persistentServer(t, st)
	code, body, _ := doGet(t, ts, "/session", "cafebabe")
	if code != http.StatusOK || body != "[]\n" {
		t.Errorf("orphaned record: code=%d body=%q", code, body)
	}
}
