package codegen

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/museum"
	"repro/internal/navigation"
)

func generate(t *testing.T, opts Options) string {
	t.Helper()
	app, err := core.NewApp(museum.PaperStore(), museum.Model(navigation.IndexedGuidedTour{}))
	if err != nil {
		t.Fatal(err)
	}
	src, err := Generate(app, opts)
	if err != nil {
		t.Fatal(err)
	}
	return string(src)
}

func TestGenerateParsesAsGo(t *testing.T) {
	src := generate(t, Options{})
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "woven.go", src, parser.AllErrors)
	if err != nil {
		t.Fatalf("generated source does not parse: %v", err)
	}
	if file.Name.Name != "main" {
		t.Errorf("package = %s, want main", file.Name.Name)
	}
}

func TestGenerateEmbedsWovenPages(t *testing.T) {
	src := generate(t, Options{Addr: ":9999"})
	for _, want := range []string{
		`"ByAuthor/picasso/guitar.html"`,
		"nav-next",        // the woven navigation is baked in
		"<h1>Guitar</h1>", // so is the content
		`defaultAddr = ":9999"`,
		"DO NOT EDIT",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("generated source missing %q", want)
		}
	}
	// No weaving machinery in the output.
	for _, banned := range []string{"repro/internal", "aspect.", "xlink."} {
		if strings.Contains(src, banned) {
			t.Errorf("generated source references weaving machinery %q", banned)
		}
	}
}

func TestGenerateCustomPackage(t *testing.T) {
	src := generate(t, Options{Package: "wovensite"})
	if !strings.HasPrefix(strings.TrimSpace(strings.Split(src, "\n//")[0]), "// Code generated") {
		t.Errorf("missing generated header")
	}
	if !strings.Contains(src, "package wovensite") {
		t.Errorf("custom package name missing")
	}
}

func TestGeneratedPageCountMatchesSite(t *testing.T) {
	app, err := core.NewApp(museum.PaperStore(), museum.Model(navigation.Index{}))
	if err != nil {
		t.Fatal(err)
	}
	site, err := app.WeaveSite()
	if err != nil {
		t.Fatal(err)
	}
	src, err := Generate(app, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := strings.Count(string(src), ".html\":")
	if got != site.Len() {
		t.Errorf("generated map has %d pages, site has %d", got, site.Len())
	}
}
