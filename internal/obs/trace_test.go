package obs

import (
	"strings"
	"testing"
	"time"
)

// testTracer builds a tracer with deterministic-enough config for
// keep/recycle assertions.
func testTracer(sampleEvery int, slow time.Duration) *Tracer {
	return NewTracer(TraceConfig{SampleEvery: sampleEvery, SlowThreshold: slow, RingSize: 8})
}

// TestTraceSamplingDeterministic: SampleEvery=N keeps exactly one
// request in every N, by arrival order.
func TestTraceSamplingDeterministic(t *testing.T) {
	tr := testTracer(4, 0)
	kept := 0
	for i := 0; i < 40; i++ {
		rt := tr.Begin()
		rt.Span(PhaseAdmit, 0, time.Microsecond)
		tr.Finish(rt, "page", "/p.html", 200, time.Millisecond)
		if got := int(tr.Ring().Total()); got != kept && got != kept+1 {
			t.Fatalf("request %d: ring total %d, want %d or %d", i, got, kept, kept+1)
		}
		kept = int(tr.Ring().Total())
	}
	if kept != 10 {
		t.Errorf("kept %d of 40 with SampleEvery=4, want 10", kept)
	}
	for _, rec := range tr.Ring().Recent(0, false) {
		if !rec.Sampled || rec.Slow {
			t.Errorf("record %+v: want sampled, not slow", rec)
		}
	}
}

// TestTraceSampleEveryOne keeps everything.
func TestTraceSampleEveryOne(t *testing.T) {
	tr := testTracer(1, 0)
	for i := 0; i < 5; i++ {
		tr.Finish(tr.Begin(), "doc", "/links.xml", 200, time.Microsecond)
	}
	if got := tr.Ring().Total(); got != 5 {
		t.Errorf("SampleEvery=1 kept %d of 5", got)
	}
}

// TestTraceSlowCapture: with sampling off, only requests at/above the
// threshold are kept, and they are marked Slow.
func TestTraceSlowCapture(t *testing.T) {
	tr := testTracer(0, 10*time.Millisecond)
	for i := 0; i < 20; i++ {
		tr.Finish(tr.Begin(), "page", "/fast.html", 200, time.Millisecond)
	}
	rt := tr.Begin()
	rt.Span(PhaseStorageOp, time.Millisecond, 14*time.Millisecond)
	tr.Finish(rt, "page", "/slow.html", 200, 15*time.Millisecond)
	if got := tr.Ring().Total(); got != 1 {
		t.Fatalf("kept %d traces, want only the slow one", got)
	}
	rec := tr.Ring().Recent(0, true)
	if len(rec) != 1 || !rec[0].Slow || rec[0].Sampled || rec[0].Path != "/slow.html" {
		t.Fatalf("slow capture = %+v", rec)
	}
	if len(rec[0].Spans) != 1 || rec[0].Spans[0].Phase != PhaseStorageOp ||
		rec[0].Spans[0].Dur != 13*time.Millisecond {
		t.Errorf("slow trace spans = %+v", rec[0].Spans)
	}
}

// TestTraceSpanOverflow: past the fixed slots, spans are dropped and
// counted, never allocated.
func TestTraceSpanOverflow(t *testing.T) {
	tr := testTracer(1, 0)
	rt := tr.Begin()
	for i := 0; i < maxSpans+3; i++ {
		rt.Span(PhaseAdmit, 0, time.Microsecond)
	}
	tr.Finish(rt, "page", "/p.html", 200, time.Millisecond)
	rec := tr.Ring().Recent(1, false)
	if len(rec) != 1 || len(rec[0].Spans) != maxSpans || rec[0].Truncated != 3 {
		t.Errorf("overflow: %d spans, %d truncated", len(rec[0].Spans), rec[0].Truncated)
	}
}

// TestTraceIDsDistinct: consecutive requests get distinct, non-zero
// trace and span ids.
func TestTraceIDsDistinct(t *testing.T) {
	tr := testTracer(1, 0)
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		rt := tr.Begin()
		id := rt.TraceID()
		if id == strings.Repeat("0", 32) {
			t.Fatal("all-zero trace id")
		}
		if seen[id] {
			t.Fatalf("trace id %s repeated", id)
		}
		seen[id] = true
		tr.Finish(rt, "page", "/p.html", 200, 0)
	}
}

// TestTraceparentRoundTrip: format then parse recovers the ids.
func TestTraceparentRoundTrip(t *testing.T) {
	var tid [16]byte
	var sid [8]byte
	for i := range tid {
		tid[i] = byte(i + 1)
	}
	for i := range sid {
		sid[i] = byte(0xa0 + i)
	}
	h := FormatTraceparent(tid, sid, true)
	if len(h) != traceparentLen || !strings.HasPrefix(h, "00-") || !strings.HasSuffix(h, "-01") {
		t.Fatalf("FormatTraceparent = %q", h)
	}
	gotTid, gotSid, ok := ParseTraceparent(h)
	if !ok || gotTid != tid || gotSid != sid {
		t.Fatalf("round trip failed: %q -> %x %x %v", h, gotTid, gotSid, ok)
	}
	if h2 := FormatTraceparent(tid, sid, false); !strings.HasSuffix(h2, "-00") {
		t.Errorf("unsampled flags = %q", h2)
	}
}

// TestParseTraceparentRejects: malformed headers, unknown versions and
// all-zero ids are invalid trace context.
func TestParseTraceparentRejects(t *testing.T) {
	valid := "00-0123456789abcdef0123456789abcdef-0123456789abcdef-01"
	if _, _, ok := ParseTraceparent(valid); !ok {
		t.Fatalf("valid header %q rejected", valid)
	}
	for _, h := range []string{
		"",
		"00",
		valid + "0",      // too long
		valid[:54],       // too short
		"01" + valid[2:], // unknown version
		"00_0123456789abcdef0123456789abcdef-0123456789abcdef-01", // bad separator
		"00-0123456789abcdefg123456789abcdef-0123456789abcdef-01", // non-hex trace id
		"00-00000000000000000000000000000000-0123456789abcdef-01", // zero trace id
		"00-0123456789abcdef0123456789abcdef-0000000000000000-01", // zero parent id
		"00-0123456789abcdef0123456789abcdef-0123456789abcdef-zz", // non-hex flags
	} {
		if _, _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) = ok, want rejection", h)
		}
	}
}

// TestAdoptParent: a valid traceparent swaps the request onto the
// caller's trace; the outgoing header then carries the adopted id.
func TestAdoptParent(t *testing.T) {
	tr := testTracer(1, 0)
	rt := tr.Begin()
	own := rt.TraceID()
	in := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	if !rt.AdoptParent(in) {
		t.Fatal("valid traceparent not adopted")
	}
	if rt.TraceID() != "4bf92f3577b34da6a3ce929d0e0e4736" || rt.TraceID() == own {
		t.Errorf("adopted trace id = %s", rt.TraceID())
	}
	if !rt.HasParent() {
		t.Error("HasParent = false after adoption")
	}
	if !strings.HasPrefix(rt.Traceparent(), "00-4bf92f3577b34da6a3ce929d0e0e4736-") {
		t.Errorf("outgoing traceparent = %q", rt.Traceparent())
	}
	tr.Finish(rt, "page", "/p.html", 200, 0)
	rec := tr.Ring().Recent(1, false)
	if len(rec) != 1 || rec[0].ParentID != "00f067aa0ba902b7" {
		t.Errorf("kept parent id = %+v", rec)
	}
	if rt2 := tr.Begin(); rt2.HasParent() {
		t.Error("recycled slot kept its parent")
	}
}

// TestTraceRingWraparound: Seq stays monotonic across overwrite, Recent
// clamps at the retained boundary, and the slow filter composes with
// the limit.
func TestTraceRingWraparound(t *testing.T) {
	r := NewTraceRing(3)
	for i := 0; i < 7; i++ {
		rec := r.Record(TraceRecord{Path: "/p", Slow: i%2 == 0})
		if rec.Seq != uint64(i) {
			t.Fatalf("Record #%d stamped Seq %d", i, rec.Seq)
		}
	}
	if r.Total() != 7 {
		t.Errorf("Total = %d, want 7", r.Total())
	}
	// Retained: seqs 4, 5, 6. A limit past the boundary clamps.
	for _, limit := range []int{0, 3, 5, 100} {
		got := r.Recent(limit, false)
		if len(got) != 3 || got[0].Seq != 6 || got[1].Seq != 5 || got[2].Seq != 4 {
			t.Errorf("Recent(%d) seqs = %+v", limit, got)
		}
	}
	if got := r.Recent(2, false); len(got) != 2 || got[0].Seq != 6 || got[1].Seq != 5 {
		t.Errorf("Recent(2) = %+v", got)
	}
	// Slow filter: of the retained, seqs 6 and 4 are slow.
	slow := r.Recent(0, true)
	if len(slow) != 2 || slow[0].Seq != 6 || slow[1].Seq != 4 {
		t.Errorf("Recent(0, slow) = %+v", slow)
	}
	if slow := r.Recent(1, true); len(slow) != 1 || slow[0].Seq != 6 {
		t.Errorf("Recent(1, slow) = %+v", slow)
	}
}

// TestTraceRingCapacityClamp: capacity < 1 still retains the latest
// record.
func TestTraceRingCapacityClamp(t *testing.T) {
	r := NewTraceRing(0)
	r.Record(TraceRecord{Path: "/a"})
	r.Record(TraceRecord{Path: "/b"})
	got := r.Recent(0, false)
	if len(got) != 1 || got[0].Path != "/b" || got[0].Seq != 1 {
		t.Errorf("Recent = %+v", got)
	}
}

// TestTraceUnsampledZeroAllocs is the acceptance-criterion guard: an
// unsampled, fast request's whole trace lifecycle — Begin, a serve
// path's worth of spans, Finish-and-recycle — allocates nothing.
func TestTraceUnsampledZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation skews allocation counts")
	}
	tr := testTracer(0, time.Hour)
	// Warm the pool so steady state is measured, not first touch.
	tr.Finish(tr.Begin(), "page", "/p.html", 200, time.Microsecond)
	if avg := testing.AllocsPerRun(1000, func() {
		rt := tr.Begin()
		rt.Span(PhaseAdmit, 0, 100)
		rt.Span(PhaseSessionLookup, 100, 300)
		rt.Span(PhaseCacheHit, 300, 700)
		rt.Span(PhaseHopRecord, 700, 800)
		rt.Span(PhaseFlushEnqueue, 800, 900)
		rt.Span(PhaseWrite, 900, 1200)
		tr.Finish(rt, "page", "/p.html", 200, 1300)
	}); avg != 0 {
		t.Errorf("unsampled trace lifecycle = %.2f allocs/op, want 0", avg)
	}
}

// TestPhaseNames: every phase has a distinct fixed name and the
// out-of-range guard holds.
func TestPhaseNames(t *testing.T) {
	seen := map[string]bool{}
	for p := Phase(0); p < numPhases; p++ {
		name := p.Name()
		if name == "" || seen[name] {
			t.Errorf("phase %d name %q (empty or duplicate)", p, name)
		}
		seen[name] = true
	}
	if numPhases.Name() != "" {
		t.Errorf("out-of-range phase name = %q", numPhases.Name())
	}
}

// BenchmarkTraceUnsampled is the steady-state cost tracing adds per
// request when the trace is recycled (the overwhelmingly common case).
func BenchmarkTraceUnsampled(b *testing.B) {
	tr := testTracer(0, time.Hour)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rt := tr.Begin()
		rt.Span(PhaseAdmit, 0, 100)
		rt.Span(PhaseCacheHit, 100, 700)
		rt.Span(PhaseWrite, 700, 1000)
		tr.Finish(rt, "page", "/p.html", 200, 1100)
	}
}

// BenchmarkTraceKept is the keep-path cost: record copy, hex ids, ring
// insert.
func BenchmarkTraceKept(b *testing.B) {
	tr := testTracer(1, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rt := tr.Begin()
		rt.Span(PhaseAdmit, 0, 100)
		rt.Span(PhaseCacheHit, 100, 700)
		rt.Span(PhaseWrite, 700, 1000)
		tr.Finish(rt, "page", "/p.html", 200, 1100)
	}
}
