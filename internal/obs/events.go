package obs

import (
	"sync"
	"time"
)

// MutationEvent is one rebuild trace record: what changed the woven
// model, how long the rebuild took, and the invalidation blast radius
// the diff computed. The ring of recent events is the runtime
// counterpart of the paper's inspectable navigation spec — not just
// that the model changed, but what each change cost.
type MutationEvent struct {
	// Seq numbers events monotonically from process start; the ring
	// drops old events but never renumbers.
	Seq uint64 `json:"seq"`
	// Time is when the mutation completed.
	Time time.Time `json:"time"`
	// Kind is the mutation entry point: "structure-swap", "document",
	// "stylesheet".
	Kind string `json:"kind"`
	// Target names what was mutated: family names for a structure swap,
	// the document URI, "stylesheet".
	Target string `json:"target,omitempty"`
	// Duration is how long the rebuild (validate, weave, diff,
	// invalidate) took.
	Duration time.Duration `json:"duration_ns"`
	// PagesInvalidated is how many cached pages the diff dropped.
	PagesInvalidated int `json:"pages_invalidated"`
	// Verdict is the diff's conclusion: "full" (everything dropped),
	// "local" (family- or document-scoped drop) or "none".
	Verdict string `json:"verdict,omitempty"`
	// CacheGeneration is the page-cache generation after the mutation.
	CacheGeneration uint64 `json:"cache_generation"`
}

// EventRing is a bounded ring of recent mutation events. Mutations are
// control-plane operations — a handful per minute, not per
// microsecond — so a plain mutex is the right tool here.
type EventRing struct {
	mu   sync.Mutex
	buf  []MutationEvent
	next uint64 // total events ever recorded
}

// NewEventRing returns a ring holding the last capacity events.
func NewEventRing(capacity int) *EventRing {
	if capacity < 1 {
		capacity = 1
	}
	return &EventRing{buf: make([]MutationEvent, 0, capacity)}
}

// Record stamps e with the next sequence number and stores it,
// returning the stamped event. The caller sets every other field.
func (r *EventRing) Record(e MutationEvent) MutationEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	e.Seq = r.next
	r.next++
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[e.Seq%uint64(cap(r.buf))] = e
	}
	return e
}

// Recent returns up to limit events, newest first. limit <= 0 means
// all retained events.
func (r *EventRing) Recent(limit int) []MutationEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := len(r.buf)
	if limit <= 0 || limit > n {
		limit = n
	}
	out := make([]MutationEvent, 0, limit)
	for i := 0; i < limit; i++ {
		out = append(out, r.buf[(r.next-1-uint64(i))%uint64(cap(r.buf))])
	}
	return out
}

// Total reports how many events have ever been recorded, including
// those the ring has since dropped.
func (r *EventRing) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}
