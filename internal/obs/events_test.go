package obs

import "testing"

// Wraparound coverage for the mutation-event ring beyond the happy
// path: Seq must stay monotonic across overwrite, and Recent's limit
// must clamp at the retained boundary no matter how it relates to the
// capacity.

// TestEventRingWraparoundSeq: overwriting old events never renumbers —
// after 2×capacity records the retained window is the newest capacity
// seqs, contiguous and descending.
func TestEventRingWraparoundSeq(t *testing.T) {
	r := NewEventRing(3)
	for i := 0; i < 6; i++ {
		if e := r.Record(MutationEvent{Kind: "document"}); e.Seq != uint64(i) {
			t.Fatalf("Record #%d stamped Seq %d", i, e.Seq)
		}
	}
	got := r.Recent(0)
	if len(got) != 3 {
		t.Fatalf("Recent(0) len = %d, want 3", len(got))
	}
	for i, e := range got {
		if want := uint64(5 - i); e.Seq != want {
			t.Errorf("Recent[%d].Seq = %d, want %d", i, e.Seq, want)
		}
	}
	if r.Total() != 6 {
		t.Errorf("Total = %d, want 6", r.Total())
	}
}

// TestEventRingLimitClamp: limits at, below, above and far above the
// retained count — the ?limit contract apiEvents leans on.
func TestEventRingLimitClamp(t *testing.T) {
	r := NewEventRing(4)
	for i := 0; i < 9; i++ { // wrapped twice, retaining seqs 5..8
		r.Record(MutationEvent{Kind: "stylesheet"})
	}
	for _, tc := range []struct {
		limit int
		want  int
	}{
		{limit: 0, want: 4},   // all retained
		{limit: -1, want: 4},  // negative = all retained
		{limit: 2, want: 2},   // below the boundary
		{limit: 4, want: 4},   // exactly the boundary
		{limit: 5, want: 4},   // one past the boundary
		{limit: 100, want: 4}, // far past
	} {
		got := r.Recent(tc.limit)
		if len(got) != tc.want {
			t.Errorf("Recent(%d) len = %d, want %d", tc.limit, len(got), tc.want)
			continue
		}
		for i, e := range got {
			if want := uint64(8 - i); e.Seq != want {
				t.Errorf("Recent(%d)[%d].Seq = %d, want %d", tc.limit, i, e.Seq, want)
			}
		}
	}
}

// TestEventRingPartiallyFilled: before the first wrap, Recent returns
// only what exists — a limit past the fill level clamps to it.
func TestEventRingPartiallyFilled(t *testing.T) {
	r := NewEventRing(8)
	if got := r.Recent(5); len(got) != 0 {
		t.Errorf("empty ring Recent(5) = %+v", got)
	}
	r.Record(MutationEvent{Kind: "document"})
	r.Record(MutationEvent{Kind: "document"})
	got := r.Recent(5)
	if len(got) != 2 || got[0].Seq != 1 || got[1].Seq != 0 {
		t.Errorf("Recent(5) on 2 records = %+v", got)
	}
}

// TestEventRingCapacityClamp: capacity < 1 still retains the single
// newest event instead of panicking on a zero-length buffer.
func TestEventRingCapacityClamp(t *testing.T) {
	r := NewEventRing(0)
	r.Record(MutationEvent{Kind: "a"})
	r.Record(MutationEvent{Kind: "b"})
	got := r.Recent(0)
	if len(got) != 1 || got[0].Kind != "b" || got[0].Seq != 1 {
		t.Errorf("Recent = %+v", got)
	}
}
