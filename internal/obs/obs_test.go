package obs

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestGoldenExposition pins the exact exposition output for a small
// registry: family ordering, HELP/TYPE lines, label rendering,
// cumulative histogram buckets, +Inf, _sum and _count.
func TestGoldenExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("demo_requests_total", "Requests served.", "route", "page", "code", "2xx").Add(3)
	r.Counter("demo_requests_total", "Requests served.", "route", "doc", "code", "2xx").Inc()
	r.Histogram("demo_latency_seconds", "Serve latency.").ObserveNanos(1000)
	r.GaugeFunc("demo_queue_depth", "Dirty sessions awaiting flush.", func() float64 { return 4 })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP demo_latency_seconds Serve latency.
# TYPE demo_latency_seconds histogram
demo_latency_seconds_bucket{le="2.56e-07"} 0
demo_latency_seconds_bucket{le="5.12e-07"} 0
demo_latency_seconds_bucket{le="1.024e-06"} 1
demo_latency_seconds_bucket{le="2.048e-06"} 1
demo_latency_seconds_bucket{le="4.096e-06"} 1
demo_latency_seconds_bucket{le="8.192e-06"} 1
demo_latency_seconds_bucket{le="1.6384e-05"} 1
demo_latency_seconds_bucket{le="3.2768e-05"} 1
demo_latency_seconds_bucket{le="6.5536e-05"} 1
demo_latency_seconds_bucket{le="0.000131072"} 1
demo_latency_seconds_bucket{le="0.000262144"} 1
demo_latency_seconds_bucket{le="0.000524288"} 1
demo_latency_seconds_bucket{le="0.001048576"} 1
demo_latency_seconds_bucket{le="0.002097152"} 1
demo_latency_seconds_bucket{le="0.004194304"} 1
demo_latency_seconds_bucket{le="0.008388608"} 1
demo_latency_seconds_bucket{le="0.016777216"} 1
demo_latency_seconds_bucket{le="0.033554432"} 1
demo_latency_seconds_bucket{le="0.067108864"} 1
demo_latency_seconds_bucket{le="0.134217728"} 1
demo_latency_seconds_bucket{le="0.268435456"} 1
demo_latency_seconds_bucket{le="0.536870912"} 1
demo_latency_seconds_bucket{le="1.073741824"} 1
demo_latency_seconds_bucket{le="2.147483648"} 1
demo_latency_seconds_bucket{le="4.294967296"} 1
demo_latency_seconds_bucket{le="8.589934592"} 1
demo_latency_seconds_bucket{le="+Inf"} 1
demo_latency_seconds_sum 1e-06
demo_latency_seconds_count 1
# HELP demo_queue_depth Dirty sessions awaiting flush.
# TYPE demo_queue_depth gauge
demo_queue_depth 4
# HELP demo_requests_total Requests served.
# TYPE demo_requests_total counter
demo_requests_total{route="doc",code="2xx"} 1
demo_requests_total{route="page",code="2xx"} 3
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestGetOrCreate: same name+labels yields the same series; a name
// reused across types panics.
func TestGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "h", "k", "v")
	b := r.Counter("x_total", "h", "k", "v")
	if a != b {
		t.Error("same name+labels returned distinct counters")
	}
	if c := r.Counter("x_total", "h", "k", "w"); c == a {
		t.Error("distinct labels returned the same counter")
	}
	defer func() {
		if recover() == nil {
			t.Error("type collision did not panic")
		}
	}()
	r.Histogram("x_total", "h")
}

// TestCounterConcurrent: sharded adds must not lose increments.
func TestCounterConcurrent(t *testing.T) {
	c := newCounter()
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Errorf("Value = %d, want %d", got, workers*per)
	}
}

// TestHistogramBucketIndex pins the boundary math: an observation of
// exactly bound(i) lands in bucket i, one more nanosecond in i+1, and
// anything past the last finite bound in the overflow slot.
func TestHistogramBucketIndex(t *testing.T) {
	cases := []struct {
		ns   uint64
		want int
	}{
		{0, 0}, {1, 0}, {256, 0},
		{257, 1}, {512, 1}, {513, 2}, {1024, 2},
		{uint64(256) << 25, histFinite - 1},
		{uint64(256)<<25 + 1, histFinite},
		{1 << 62, histFinite},
	}
	for _, c := range cases {
		h := &Histogram{}
		h.ObserveNanos(c.ns)
		got := -1
		for i := range h.counts {
			if h.counts[i].Load() == 1 {
				got = i
				break
			}
		}
		if got != c.want {
			t.Errorf("ObserveNanos(%d) landed in bucket %d, want %d", c.ns, got, c.want)
		}
	}
	h := &Histogram{}
	h.Observe(-time.Second)
	if h.counts[0].Load() != 1 || h.sumNs.Load() != 0 {
		t.Error("negative duration should clamp to zero")
	}
}

// TestEventRing: wrap-around keeps the newest capacity events, Seq
// never renumbers, Recent returns newest first.
func TestEventRing(t *testing.T) {
	r := NewEventRing(4)
	for i := 0; i < 6; i++ {
		e := r.Record(MutationEvent{Kind: "structure-swap", PagesInvalidated: i})
		if e.Seq != uint64(i) {
			t.Fatalf("Record #%d stamped Seq %d", i, e.Seq)
		}
	}
	if r.Total() != 6 {
		t.Errorf("Total = %d, want 6", r.Total())
	}
	got := r.Recent(0)
	if len(got) != 4 {
		t.Fatalf("Recent(0) len = %d, want 4", len(got))
	}
	for i, e := range got {
		if want := uint64(5 - i); e.Seq != want {
			t.Errorf("Recent[%d].Seq = %d, want %d", i, e.Seq, want)
		}
	}
	if two := r.Recent(2); len(two) != 2 || two[0].Seq != 5 || two[1].Seq != 4 {
		t.Errorf("Recent(2) = %+v", two)
	}
}

// TestLabelEscaping: quotes, backslashes and newlines in label values
// must render escaped, not break the line format.
func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "h", "path", "a\"b\\c\nd").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `esc_total{path="a\"b\\c\nd"} 1`
	if !strings.Contains(b.String(), want) {
		t.Errorf("output %q missing escaped series %q", b.String(), want)
	}
}

// TestRecordPathAllocs is the dynamic half of the hot-path contract:
// recording into a counter or histogram allocates nothing.
func TestRecordPathAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation skews allocation counts")
	}
	c := newCounter()
	if avg := testing.AllocsPerRun(1000, func() { c.Add(1) }); avg != 0 {
		t.Errorf("Counter.Add = %.2f allocs/op, want 0", avg)
	}
	h := &Histogram{}
	if avg := testing.AllocsPerRun(1000, func() { h.Observe(1200 * time.Nanosecond) }); avg != 0 {
		t.Errorf("Histogram.Observe = %.2f allocs/op, want 0", avg)
	}
}

// BenchmarkCounterAdd measures the uncontended record cost.
func BenchmarkCounterAdd(b *testing.B) {
	c := newCounter()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

// BenchmarkCounterAddParallel measures the sharded counter under the
// contention it exists for.
func BenchmarkCounterAddParallel(b *testing.B) {
	c := newCounter()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Add(1)
		}
	})
}

// BenchmarkHistogramObserve measures one latency record.
func BenchmarkHistogramObserve(b *testing.B) {
	h := &Histogram{}
	ns := make([]uint64, 1024)
	rng := rand.New(rand.NewSource(1))
	for i := range ns {
		ns[i] = uint64(rng.Intn(5_000_000))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.ObserveNanos(ns[i&1023])
	}
}
