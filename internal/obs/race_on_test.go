//go:build race

package obs

// raceEnabled reports whether the race detector is compiled in; the
// allocation-guard tests skip under it, because instrumentation skews
// allocation counts.
const raceEnabled = true
