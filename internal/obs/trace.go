// Request-lifecycle tracing: the single-request counterpart of the
// metrics core. Metrics aggregate what the serving stack does;
// a trace explains one request — which phases it passed through and
// what each cost — so a latency outlier is attributable instead of a
// mystery bucket in a histogram.
//
// The design carries the same hot-path contract as the counters: a
// request records into a pooled, fixed-size span slot (no per-request
// allocation), phases come from a fixed vocabulary (no label
// rendering), and the clock is read by the caller — the annotated
// record path only stores offsets. Whether a trace is *kept* is
// decided at Finish: deterministic 1-in-N sampling explains the
// steady state cheaply, and an unconditional slow-request threshold
// guarantees latency outliers are always explained. Kept traces land
// in a bounded ring like EventRing; everything else is recycled
// untouched, which is what makes the idle path zero-alloc.
package obs

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"
)

// Phase names one step of the request lifecycle. The vocabulary is
// fixed so the record path never formats: a span is a phase index and
// two duration offsets.
type Phase uint8

const (
	// PhaseAdmit is the in-flight limiter's admission check.
	PhaseAdmit Phase = iota
	// PhaseSessionLookup is the in-memory session-store lookup.
	PhaseSessionLookup
	// PhaseSessionRehydrate restores a session from the durable store
	// (its store read included).
	PhaseSessionRehydrate
	// PhaseCacheHit is a page served straight from the woven-page cache.
	PhaseCacheHit
	// PhaseCacheJoin is a render coalesced onto another request's
	// in-flight weave (single-flight join).
	PhaseCacheJoin
	// PhaseCacheMiss is a cold render: this request led the weave and
	// cached the result.
	PhaseCacheMiss
	// PhaseWeave is an uncached per-request weave (page cache disabled).
	PhaseWeave
	// PhaseHopRecord is the analytics recorder counting the navigation
	// hop.
	PhaseHopRecord
	// PhaseFlushEnqueue marks the session dirty in the write-behind
	// queue.
	PhaseFlushEnqueue
	// PhaseStorageOp is a synchronous storage operation on the request
	// path (a per-step session write, a snapshot export).
	PhaseStorageOp
	// PhaseWrite is the response write: validator check, headers, body.
	PhaseWrite
	// PhaseMutation is a control-plane mutation's validate-and-rebuild.
	PhaseMutation
	numPhases
)

var phaseNames = [numPhases]string{
	"admit", "session-lookup", "session-rehydrate",
	"cache-hit", "cache-join", "cache-miss", "weave",
	"hop-record", "flush-enqueue", "storage-op",
	"response-write", "mutation",
}

// Name returns the phase's fixed wire name ("" for an out-of-range
// value, which would be a bug in the recorder).
func (p Phase) Name() string {
	if int(p) >= len(phaseNames) {
		return ""
	}
	return phaseNames[p]
}

// Span is one recorded phase: where in the request it began and how
// long it took, both as offsets from the request's start. Spans do not
// nest — the instrumentation records leaf phases only — so a trace's
// span durations sum to at most the request's total.
type Span struct {
	Phase Phase         `json:"phase"`
	Start time.Duration `json:"start_ns"`
	Dur   time.Duration `json:"duration_ns"`
}

// maxSpans bounds one request's span slots. The serve path records
// well under this; a request that somehow exceeds it drops the excess
// and counts them in Truncated rather than allocating.
const maxSpans = 16

// ReqTrace is one request's span slot, drawn from the tracer's pool at
// Begin and returned at Finish. All fields are written by one request
// goroutine; no internal locking.
type ReqTrace struct {
	traceID   [16]byte
	spanID    [8]byte
	parentID  [8]byte
	hasParent bool
	sampled   bool
	n         int
	truncated int
	spans     [maxSpans]Span
}

// Span records one completed phase. from and to are offsets from the
// request's start, measured by the (unannotated) caller — the record
// path itself never reads the clock.
//
//repro:hotpath
func (t *ReqTrace) Span(p Phase, from, to time.Duration) {
	if t.n >= maxSpans {
		t.truncated++
		return
	}
	t.spans[t.n] = Span{Phase: p, Start: from, Dur: to - from}
	t.n++
}

// Sampled reports whether the deterministic 1-in-N sampler chose this
// request at Begin (slow capture can still keep an unsampled trace).
func (t *ReqTrace) Sampled() bool { return t.sampled }

// HasParent reports whether AdoptParent installed an upstream trace
// context.
func (t *ReqTrace) HasParent() bool { return t.hasParent }

// AdoptParent installs the trace context from an incoming W3C
// traceparent header: the request joins the caller's trace (same
// trace-id, caller's span-id as parent) instead of starting its own.
// A malformed header is ignored and reported false.
func (t *ReqTrace) AdoptParent(header string) bool {
	traceID, parentID, ok := ParseTraceparent(header)
	if !ok {
		return false
	}
	t.traceID = traceID
	t.parentID = parentID
	t.hasParent = true
	return true
}

// Traceparent renders this request's outgoing W3C traceparent header
// value. It allocates — callers on the hot serve path only render it
// when the trace is sampled or propagated, never for the idle case.
func (t *ReqTrace) Traceparent() string {
	return FormatTraceparent(t.traceID, t.spanID, t.sampled)
}

// TraceID returns the trace id as 32 hex digits (allocates; keep-path
// and error-path use only).
func (t *ReqTrace) TraceID() string { return hex.EncodeToString(t.traceID[:]) }

// TraceRecord is one kept trace: the request's identity, outcome and
// phase breakdown, as stored in the ring.
type TraceRecord struct {
	// Seq numbers kept traces monotonically from process start; the
	// ring drops old traces but never renumbers.
	Seq uint64 `json:"seq"`
	// Time is when the request finished.
	Time time.Time `json:"time"`
	// TraceID, SpanID and ParentID are the W3C trace context, hex
	// encoded. ParentID is "" unless the request carried a traceparent.
	TraceID  string `json:"trace_id"`
	SpanID   string `json:"span_id"`
	ParentID string `json:"parent_span_id,omitempty"`
	// Route is the server's route class; Path the concrete request path.
	Route  string `json:"route"`
	Path   string `json:"path"`
	Status int    `json:"status"`
	// Duration is the request's total wall time.
	Duration time.Duration `json:"duration_ns"`
	// Slow marks a trace kept by the slow-request threshold; Sampled one
	// chosen by the 1-in-N sampler (both can be true).
	Slow    bool `json:"slow"`
	Sampled bool `json:"sampled"`
	// Truncated counts spans dropped past the fixed slot capacity.
	Truncated int `json:"truncated_spans,omitempty"`
	// Spans is the phase breakdown in record order.
	Spans []Span `json:"spans"`
}

// TraceRing is a bounded ring of kept traces — EventRing's shape, for
// requests. Keeps happen at most 1-in-N plus slow outliers, so a plain
// mutex is the right tool.
type TraceRing struct {
	mu   sync.Mutex
	buf  []TraceRecord
	next uint64
}

// NewTraceRing returns a ring holding the last capacity kept traces.
func NewTraceRing(capacity int) *TraceRing {
	if capacity < 1 {
		capacity = 1
	}
	return &TraceRing{buf: make([]TraceRecord, 0, capacity)}
}

// Record stamps t with the next sequence number and stores it,
// returning the stamped record.
func (r *TraceRing) Record(t TraceRecord) TraceRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	t.Seq = r.next
	r.next++
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, t)
	} else {
		r.buf[t.Seq%uint64(cap(r.buf))] = t
	}
	return t
}

// Recent returns up to limit kept traces, newest first; slowOnly
// filters to traces kept by the slow threshold. limit <= 0 means all
// retained.
func (r *TraceRing) Recent(limit int, slowOnly bool) []TraceRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := len(r.buf)
	if limit <= 0 || limit > n {
		limit = n
	}
	out := make([]TraceRecord, 0, limit)
	for i := 0; i < n && len(out) < limit; i++ {
		t := r.buf[(r.next-1-uint64(i))%uint64(cap(r.buf))]
		if slowOnly && !t.Slow {
			continue
		}
		out = append(out, t)
	}
	return out
}

// Total reports how many traces have ever been kept, including those
// the ring has since dropped.
func (r *TraceRing) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}

// TraceConfig configures a Tracer.
type TraceConfig struct {
	// SampleEvery keeps one request trace in every N (1 keeps every
	// request; 0 or negative disables sampling, leaving slow capture
	// only).
	SampleEvery int
	// SlowThreshold unconditionally keeps any request at least this
	// slow, sampled or not (0 disables slow capture).
	SlowThreshold time.Duration
	// RingSize is the kept-trace ring capacity (default
	// DefaultTraceRing when <= 0).
	RingSize int
}

// DefaultTraceRing is the default kept-trace ring capacity.
const DefaultTraceRing = 256

// Tracer hands out per-request span slots and decides, at Finish,
// which traces are kept. Safe for concurrent use.
type Tracer struct {
	sampleEvery uint64
	slow        time.Duration
	ring        *TraceRing

	// seq drives the deterministic 1-in-N sampling decision; idSeq and
	// idSeed drive trace/span id generation (splitmix64 over a
	// crypto-seeded base — unguessable start, no per-request entropy
	// read).
	seq    atomic.Uint64
	idSeq  atomic.Uint64
	idSeed uint64

	pool sync.Pool
}

// NewTracer returns a tracer with the given sampling, slow-capture and
// retention configuration.
func NewTracer(cfg TraceConfig) *Tracer {
	if cfg.RingSize <= 0 {
		cfg.RingSize = DefaultTraceRing
	}
	tr := &Tracer{
		slow: cfg.SlowThreshold,
		ring: NewTraceRing(cfg.RingSize),
	}
	if cfg.SampleEvery > 0 {
		tr.sampleEvery = uint64(cfg.SampleEvery)
	}
	var seed [8]byte
	if _, err := rand.Read(seed[:]); err == nil {
		tr.idSeed = binary.LittleEndian.Uint64(seed[:])
	} else {
		// Entropy failure leaves ids predictable, not absent — tracing
		// is diagnostics, not security.
		tr.idSeed = uint64(time.Now().UnixNano())
	}
	tr.pool.New = func() any { return new(ReqTrace) }
	return tr
}

// Ring exposes the kept-trace ring (the /api/v1/traces backing store).
func (tr *Tracer) Ring() *TraceRing { return tr.ring }

// SlowThreshold reports the configured slow-capture threshold.
func (tr *Tracer) SlowThreshold() time.Duration { return tr.slow }

// splitmix64 is the id generator's mixing function: a full-period
// permutation of the 64-bit counter, so ids never repeat within a
// process and share no visible structure.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Begin draws a span slot from the pool, assigns fresh trace and span
// ids, and takes the deterministic sampling decision. The caller pairs
// every Begin with exactly one Finish.
//
//repro:hotpath
func (tr *Tracer) Begin() *ReqTrace {
	t := tr.pool.Get().(*ReqTrace)
	t.n = 0
	t.truncated = 0
	t.hasParent = false
	t.sampled = tr.sampleEvery == 1 ||
		(tr.sampleEvery > 1 && tr.seq.Add(1)%tr.sampleEvery == 0)
	id := tr.idSeq.Add(1)
	hi := splitmix64(tr.idSeed + 2*id)
	lo := splitmix64(tr.idSeed + 2*id + 1)
	binary.BigEndian.PutUint64(t.traceID[:8], hi)
	binary.BigEndian.PutUint64(t.traceID[8:], lo)
	binary.BigEndian.PutUint64(t.spanID[:], splitmix64(hi^lo))
	// An all-zero id is invalid trace context; splitmix64 can
	// technically produce it, so pin one bit rather than loop.
	t.traceID[15] |= 1
	t.spanID[7] |= 1
	return t
}

// Finish ends the request's trace: kept into the ring when sampled or
// at/above the slow threshold, recycled otherwise. Recycling is the
// common case and touches nothing but the pool — zero allocations.
//
//repro:hotpath
func (tr *Tracer) Finish(t *ReqTrace, route, path string, status int, total time.Duration) {
	if t == nil {
		return
	}
	if t.sampled || (tr.slow > 0 && total >= tr.slow) {
		//repro:allow(kept trace: the sampled-or-slow tail, off the idle serve path)
		tr.keep(t, route, path, status, total)
	}
	tr.pool.Put(t)
}

// keep copies the slot into a durable TraceRecord and rings it. Runs
// only for the sampled-or-slow tail, so allocating and reading the
// clock here is fine.
func (tr *Tracer) keep(t *ReqTrace, route, path string, status int, total time.Duration) {
	rec := TraceRecord{
		Time:      time.Now(),
		TraceID:   hex.EncodeToString(t.traceID[:]),
		SpanID:    hex.EncodeToString(t.spanID[:]),
		Route:     route,
		Path:      path,
		Status:    status,
		Duration:  total,
		Slow:      tr.slow > 0 && total >= tr.slow,
		Sampled:   t.sampled,
		Truncated: t.truncated,
		Spans:     make([]Span, t.n),
	}
	if t.hasParent {
		rec.ParentID = hex.EncodeToString(t.parentID[:])
	}
	copy(rec.Spans, t.spans[:t.n])
	tr.ring.Record(rec)
}

// traceparentLen is the W3C version-00 header length:
// "00-" + 32 hex + "-" + 16 hex + "-" + 2 hex.
const traceparentLen = 55

const hexDigits = "0123456789abcdef"

// FormatTraceparent renders a W3C traceparent header value (version
// 00), with the sampled flag set accordingly.
func FormatTraceparent(traceID [16]byte, spanID [8]byte, sampled bool) string {
	var b [traceparentLen]byte
	b[0], b[1], b[2] = '0', '0', '-'
	hex.Encode(b[3:35], traceID[:])
	b[35] = '-'
	hex.Encode(b[36:52], spanID[:])
	b[52], b[53] = '-', '0'
	b[54] = '0'
	if sampled {
		b[54] = '1'
	}
	return string(b[:])
}

// ParseTraceparent parses a W3C traceparent header (version 00):
// "00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>". It reports
// ok=false for malformed headers, unknown versions and the all-zero
// ids the spec declares invalid.
func ParseTraceparent(h string) (traceID [16]byte, parentID [8]byte, ok bool) {
	if len(h) != traceparentLen || h[0] != '0' || h[1] != '0' ||
		h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return traceID, parentID, false
	}
	if _, err := hex.Decode(traceID[:], []byte(h[3:35])); err != nil {
		return traceID, parentID, false
	}
	if _, err := hex.Decode(parentID[:], []byte(h[36:52])); err != nil {
		return traceID, parentID, false
	}
	if !isHexByte(h[53]) || !isHexByte(h[54]) {
		return traceID, parentID, false
	}
	if traceID == ([16]byte{}) || parentID == ([8]byte{}) {
		return traceID, parentID, false
	}
	return traceID, parentID, true
}

func isHexByte(c byte) bool {
	return ('0' <= c && c <= '9') || ('a' <= c && c <= 'f')
}
