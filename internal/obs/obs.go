// Package obs is the repository's stdlib-only metrics core: lock-free
// sharded counters and fixed-boundary log-spaced latency histograms
// whose record paths are //repro:hotpath — zero allocations, no locks,
// a handful of atomic adds — plus a registry that renders everything in
// Prometheus text exposition format (version 0.0.4).
//
// The record path is the contract. Counter.Add, Counter.Inc,
// Histogram.Observe and Histogram.ObserveNanos may be called from
// benchmarked serve paths; they never lock, never allocate, and never
// read the global clock (callers hand Observe a duration they already
// measured). navlint's hotpath analyzer enforces this on the
// instrumentation itself, and TestRecordPathAllocs is the dynamic
// backstop.
//
// Registration is get-or-create: Registry.Counter and
// Registry.Histogram return the existing series when called twice with
// the same name and labels, so package-level instrumentation and
// per-instance wiring (several Servers in one test binary) can share a
// registry without double-registration panics. Name collisions across
// metric types panic at registration time — that is a programming
// error, not an operational condition.
//
// Reads are approximately consistent, like every scrape: a counter read
// concurrent with adds may miss the newest increments, and a
// histogram's sum and buckets are loaded independently. Prometheus
// tolerates this by design.
package obs

import (
	"io"
	"math/bits"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"
)

// Default is the process-wide registry. Package-level instrumentation
// in core, server and storage registers here; navserve's /metrics
// renders it.
var Default = NewRegistry()

// counterCell is one shard of a Counter, padded out to a cache line so
// adjacent shards never false-share under concurrent writers.
type counterCell struct {
	n atomic.Uint64
	_ [56]byte
}

// Counter is a monotonically increasing metric. Adds spread across
// cache-line-padded shards chosen from the caller's stack address, so
// concurrent goroutines rarely contend on one line; Value sums the
// shards.
type Counter struct {
	cells []counterCell
	mask  uintptr
}

func newCounter() *Counter {
	n := nextPow2(runtime.GOMAXPROCS(0))
	if n > 64 {
		n = 64
	}
	return &Counter{cells: make([]counterCell, n), mask: uintptr(n - 1)}
}

// Add increments the counter by n.
//
//repro:hotpath
func (c *Counter) Add(n uint64) {
	var pin byte
	// A goroutine's stack address is a cheap, stable-enough shard key:
	// distinct goroutines live on distinct stack spans, so the shifted
	// address spreads concurrent writers across cells without a runtime
	// hook. The pointer never outlives the conversion, so pin stays on
	// the stack.
	i := (uintptr(unsafe.Pointer(&pin)) >> 10) & c.mask
	c.cells[i].n.Add(n)
}

// Inc increments the counter by one.
//
//repro:hotpath
func (c *Counter) Inc() { c.Add(1) }

// Value sums the shards.
func (c *Counter) Value() uint64 {
	var t uint64
	for i := range c.cells {
		t += c.cells[i].n.Load()
	}
	return t
}

// Histogram bucket layout: log2-spaced upper bounds starting at 256ns
// (bound(i) = 256ns << i), histFinite finite buckets reaching ~8.6s,
// plus one overflow bucket rendered as +Inf. Boundaries are fixed at
// compile time, so recording is one bits.Len64 and two atomic adds.
const (
	histMinBoundNs = 256
	histFinite     = 26
)

// Histogram is a fixed-boundary latency histogram. Observations are
// nanoseconds internally; rendering converts bounds and sum to seconds,
// the Prometheus base unit.
type Histogram struct {
	counts [histFinite + 1]atomic.Uint64
	sumNs  atomic.Uint64
}

// ObserveNanos records one observation, in nanoseconds.
//
//repro:hotpath
func (h *Histogram) ObserveNanos(ns uint64) {
	i := 0
	if ns > histMinBoundNs {
		i = bits.Len64(ns-1) - 8
		if i > histFinite {
			i = histFinite
		}
	}
	h.counts[i].Add(1)
	h.sumNs.Add(ns)
}

// Observe records one observation. Negative durations clamp to zero.
//
//repro:hotpath
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.ObserveNanos(uint64(d))
}

// Count reports the total number of observations.
func (h *Histogram) Count() uint64 {
	var t uint64
	for i := range h.counts {
		t += h.counts[i].Load()
	}
	return t
}

// SumSeconds reports the sum of all observations, in seconds.
func (h *Histogram) SumSeconds() float64 {
	return float64(h.sumNs.Load()) / 1e9
}

// bucketBound is the upper bound of finite bucket i, in seconds.
func bucketBound(i int) float64 {
	return float64(uint64(histMinBoundNs)<<uint(i)) / 1e9
}

// family is one metric name: its metadata plus every labelled series
// registered under it.
type family struct {
	name string
	help string
	typ  string // "counter", "gauge" or "histogram"

	order    []string // label signatures, registration order
	counters map[string]*Counter
	hists    map[string]*Histogram
	gauges   map[string]func() float64
}

// Registry is an ordered collection of metric families. All methods are
// safe for concurrent use; registration and rendering take a mutex, the
// returned Counter/Histogram record paths never do.
type Registry struct {
	mu  sync.Mutex
	fam map[string]*family
}

// NewRegistry returns an empty registry. Most callers want Default.
func NewRegistry() *Registry {
	return &Registry{fam: map[string]*family{}}
}

// Counter returns the counter series for name and the given label
// pairs (alternating key, value), creating it on first use.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	ls := labelString(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, "counter")
	if c, ok := f.counters[ls]; ok {
		return c
	}
	c := newCounter()
	f.counters[ls] = c
	f.order = append(f.order, ls)
	return c
}

// Histogram returns the histogram series for name and the given label
// pairs, creating it on first use.
func (r *Registry) Histogram(name, help string, labels ...string) *Histogram {
	ls := labelString(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, "histogram")
	if h, ok := f.hists[ls]; ok {
		return h
	}
	h := &Histogram{}
	f.hists[ls] = h
	f.order = append(f.order, ls)
	return h
}

// GaugeFunc registers fn as the value of a gauge series, replacing any
// previous function for the same name and labels. fn is called during
// rendering with the registry lock held and must not call back into the
// registry.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	ls := labelString(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, "gauge")
	if _, ok := f.gauges[ls]; !ok {
		f.order = append(f.order, ls)
	}
	f.gauges[ls] = fn
}

// familyLocked finds or creates the family for name, panicking on a
// type collision — two call sites disagreeing about a metric's type is
// a bug to surface at startup, not a scrape-time condition.
func (r *Registry) familyLocked(name, help, typ string) *family {
	if !validName(name) {
		panic("obs: invalid metric name " + strconv.Quote(name))
	}
	f, ok := r.fam[name]
	if !ok {
		f = &family{
			name:     name,
			help:     help,
			typ:      typ,
			counters: map[string]*Counter{},
			hists:    map[string]*Histogram{},
			gauges:   map[string]func() float64{},
		}
		r.fam[name] = f
		return f
	}
	if f.typ != typ {
		panic("obs: metric " + name + " registered as " + typ + ", already a " + f.typ)
	}
	return f
}

// WritePrometheus renders every family in text exposition format,
// families and series in lexical order so output is deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.fam))
	for n := range r.fam {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		writeFamily(&b, r.fam[n])
	}
	r.mu.Unlock()
	_, err := io.WriteString(w, b.String())
	return err
}

func writeFamily(b *strings.Builder, f *family) {
	b.WriteString("# HELP ")
	b.WriteString(f.name)
	b.WriteByte(' ')
	b.WriteString(escapeHelp(f.help))
	b.WriteString("\n# TYPE ")
	b.WriteString(f.name)
	b.WriteByte(' ')
	b.WriteString(f.typ)
	b.WriteByte('\n')
	series := append([]string(nil), f.order...)
	sort.Strings(series)
	for _, ls := range series {
		switch f.typ {
		case "counter":
			b.WriteString(f.name)
			b.WriteString(ls)
			b.WriteByte(' ')
			b.WriteString(strconv.FormatUint(f.counters[ls].Value(), 10))
			b.WriteByte('\n')
		case "gauge":
			b.WriteString(f.name)
			b.WriteString(ls)
			b.WriteByte(' ')
			b.WriteString(formatFloat(f.gauges[ls]()))
			b.WriteByte('\n')
		case "histogram":
			writeHistogram(b, f.name, ls, f.hists[ls])
		}
	}
}

func writeHistogram(b *strings.Builder, name, ls string, h *Histogram) {
	var cum uint64
	for i := 0; i < histFinite; i++ {
		cum += h.counts[i].Load()
		writeBucket(b, name, ls, formatFloat(bucketBound(i)), cum)
	}
	cum += h.counts[histFinite].Load()
	writeBucket(b, name, ls, "+Inf", cum)
	b.WriteString(name)
	b.WriteString("_sum")
	b.WriteString(ls)
	b.WriteByte(' ')
	b.WriteString(formatFloat(h.SumSeconds()))
	b.WriteByte('\n')
	b.WriteString(name)
	b.WriteString("_count")
	b.WriteString(ls)
	b.WriteByte(' ')
	b.WriteString(strconv.FormatUint(cum, 10))
	b.WriteByte('\n')
}

// writeBucket writes one cumulative bucket line, splicing the le label
// into the series' existing label set.
func writeBucket(b *strings.Builder, name, ls, le string, cum uint64) {
	b.WriteString(name)
	b.WriteString("_bucket")
	if ls == "" {
		b.WriteString(`{le="`)
	} else {
		b.WriteString(ls[:len(ls)-1])
		b.WriteString(`,le="`)
	}
	b.WriteString(le)
	b.WriteString(`"} `)
	b.WriteString(strconv.FormatUint(cum, 10))
	b.WriteByte('\n')
}

// WriteGauge writes a single-series unlabelled gauge family in
// exposition format — for per-instance values (queue depth, uptime)
// that live on a struct rather than in a registry.
func WriteGauge(b *strings.Builder, name, help string, v float64) {
	b.WriteString("# HELP ")
	b.WriteString(name)
	b.WriteByte(' ')
	b.WriteString(escapeHelp(help))
	b.WriteString("\n# TYPE ")
	b.WriteString(name)
	b.WriteString(" gauge\n")
	b.WriteString(name)
	b.WriteByte(' ')
	b.WriteString(formatFloat(v))
	b.WriteByte('\n')
}

// labelString renders alternating key/value pairs as a canonical
// {k="v",...} signature; empty for no labels.
func labelString(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic("obs: odd label list")
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		if !validLabelName(labels[i]) {
			panic("obs: invalid label name " + strconv.Quote(labels[i]))
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format:
// backslash, double quote and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

// escapeHelp escapes a help string: backslash and newline.
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// formatFloat renders a float the way Prometheus expects: shortest
// representation that round-trips.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func nextPow2(n int) int {
	if n < 1 {
		return 1
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
