package difflib

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestLines(t *testing.T) {
	if got := Lines(""); got != nil {
		t.Errorf("Lines(\"\") = %v", got)
	}
	if got := Lines("a\nb\n"); len(got) != 2 || got[1] != "b" {
		t.Errorf("trailing newline handling: %v", got)
	}
	if got := Lines("single"); len(got) != 1 {
		t.Errorf("single line: %v", got)
	}
}

func TestDiffIdentical(t *testing.T) {
	a := []string{"one", "two", "three"}
	edits := Diff(a, a)
	st := Stats(edits)
	if st.Changed() || st.Total() != 0 {
		t.Errorf("identical inputs changed: %+v", st)
	}
	if len(edits) != 3 {
		t.Errorf("edits = %d", len(edits))
	}
}

func TestDiffInsertDelete(t *testing.T) {
	a := []string{"keep1", "drop", "keep2"}
	b := []string{"keep1", "keep2", "added"}
	st := Stats(Diff(a, b))
	if st.Removed != 1 || st.Added != 1 {
		t.Errorf("stats = %+v, want 1 removed 1 added", st)
	}
}

func TestDiffTheFigure34Scenario(t *testing.T) {
	// Figure 3 to Figure 4: the IGT adds two anchor lines to the page.
	fig3 := []string{
		"<html>", "<body>", "<h1>Guitar</h1>",
		`<a href="index.html">Index</a>`,
		"</body>", "</html>",
	}
	fig4 := []string{
		"<html>", "<body>", "<h1>Guitar</h1>",
		`<a href="index.html">Index</a>`,
		`<a href="guernica.html">Next</a>`,
		`<a href="avignon.html">Previous</a>`,
		"</body>", "</html>",
	}
	st := Stats(Diff(fig3, fig4))
	if st.Added != 2 || st.Removed != 0 {
		t.Errorf("Figure 3->4 delta = %+v, want exactly the 2 added anchors", st)
	}
}

func TestDiffStrings(t *testing.T) {
	st := DiffStrings("a\nb\nc", "a\nX\nc")
	if st.Added != 1 || st.Removed != 1 {
		t.Errorf("replace = %+v", st)
	}
	if DiffStrings("", "").Changed() {
		t.Error("empty vs empty changed")
	}
	if got := DiffStrings("", "x\ny"); got.Added != 2 {
		t.Errorf("from empty = %+v", got)
	}
}

func TestUnified(t *testing.T) {
	a := []string{"1", "2", "3", "4", "5", "6", "7", "8"}
	b := []string{"1", "2", "3", "4x", "5", "6", "7", "8"}
	out := Unified(a, b, 1)
	if !strings.Contains(out, "-4\n") || !strings.Contains(out, "+4x\n") {
		t.Errorf("unified missing change:\n%s", out)
	}
	if strings.Contains(out, " 1\n") {
		t.Errorf("context too wide:\n%s", out)
	}
	if Unified(a, a, 1) != "" {
		t.Error("no-change diff should be empty")
	}
	// Two distant changes produce two hunks.
	c := []string{"1x", "2", "3", "4", "5", "6", "7", "8x"}
	out = Unified(a, c, 1)
	if !strings.Contains(out, "...") {
		t.Errorf("expected hunk separator:\n%s", out)
	}
}

func TestOpString(t *testing.T) {
	if Equal.String() != " " || Delete.String() != "-" || Insert.String() != "+" || Op(9).String() != "?" {
		t.Error("Op strings wrong")
	}
}

// TestQuickDiffReconstructs property-tests that applying the edit script
// reconstructs both inputs.
func TestQuickDiffReconstructs(t *testing.T) {
	f := func(rawA, rawB []byte) bool {
		a := toLines(rawA)
		b := toLines(rawB)
		edits := Diff(a, b)
		var gotA, gotB []string
		for _, e := range edits {
			switch e.Op {
			case Equal:
				gotA = append(gotA, e.Line)
				gotB = append(gotB, e.Line)
			case Delete:
				gotA = append(gotA, e.Line)
			case Insert:
				gotB = append(gotB, e.Line)
			}
		}
		return eq(gotA, a) && eq(gotB, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickDiffMinimalOnIdentical property-tests that x vs x yields no
// changes and the stats are consistent.
func TestQuickDiffMinimalOnIdentical(t *testing.T) {
	f := func(raw []byte) bool {
		a := toLines(raw)
		st := Stats(Diff(a, a))
		return !st.Changed() && st.Total() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// toLines maps fuzz bytes onto a small line alphabet so diffs have
// interesting overlap.
func toLines(raw []byte) []string {
	alphabet := []string{"alpha", "beta", "gamma", "delta"}
	var out []string
	for _, b := range raw {
		out = append(out, alphabet[int(b)%len(alphabet)])
		if len(out) >= 64 {
			break
		}
	}
	return out
}

func eq(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
