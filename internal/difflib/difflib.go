// Package difflib implements a line-oriented diff (longest-common-
// subsequence based) used by the tangled-baseline change-cost analyzer to
// measure exactly how many lines and files an access-structure change
// touches — the quantity the paper's §5 argues explodes in the tangled
// implementation.
package difflib

import (
	"fmt"
	"strings"
)

// Op is an edit operation.
type Op int

// Edit operations.
const (
	Equal Op = iota
	Delete
	Insert
)

// String names the op as a unified-diff prefix.
func (o Op) String() string {
	switch o {
	case Equal:
		return " "
	case Delete:
		return "-"
	case Insert:
		return "+"
	default:
		return "?"
	}
}

// Edit is one line-level edit.
type Edit struct {
	Op   Op
	Line string
}

// Lines splits s into lines without trailing newline artifacts: a final
// newline does not create a phantom empty line.
func Lines(s string) []string {
	if s == "" {
		return nil
	}
	s = strings.TrimSuffix(s, "\n")
	return strings.Split(s, "\n")
}

// Diff computes a minimal line edit script turning a into b, using the
// classic LCS dynamic program. Inputs of tens of thousands of lines are
// fine; pages in this repository are far smaller.
func Diff(a, b []string) []Edit {
	n, m := len(a), len(b)
	// lcs[i][j] = LCS length of a[i:], b[j:].
	lcs := make([][]int32, n+1)
	for i := range lcs {
		lcs[i] = make([]int32, m+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			if a[i] == b[j] {
				lcs[i][j] = lcs[i+1][j+1] + 1
			} else if lcs[i+1][j] >= lcs[i][j+1] {
				lcs[i][j] = lcs[i+1][j]
			} else {
				lcs[i][j] = lcs[i][j+1]
			}
		}
	}
	var out []Edit
	i, j := 0, 0
	for i < n && j < m {
		switch {
		case a[i] == b[j]:
			out = append(out, Edit{Op: Equal, Line: a[i]})
			i++
			j++
		case lcs[i+1][j] >= lcs[i][j+1]:
			out = append(out, Edit{Op: Delete, Line: a[i]})
			i++
		default:
			out = append(out, Edit{Op: Insert, Line: b[j]})
			j++
		}
	}
	for ; i < n; i++ {
		out = append(out, Edit{Op: Delete, Line: a[i]})
	}
	for ; j < m; j++ {
		out = append(out, Edit{Op: Insert, Line: b[j]})
	}
	return out
}

// Stat summarizes an edit script.
type Stat struct {
	Added   int
	Removed int
}

// Changed reports whether any line was added or removed.
func (s Stat) Changed() bool { return s.Added > 0 || s.Removed > 0 }

// Total returns added plus removed lines.
func (s Stat) Total() int { return s.Added + s.Removed }

// Stats tallies an edit script.
func Stats(edits []Edit) Stat {
	var s Stat
	for _, e := range edits {
		switch e.Op {
		case Insert:
			s.Added++
		case Delete:
			s.Removed++
		}
	}
	return s
}

// DiffStrings diffs two multi-line strings and returns the stats.
func DiffStrings(a, b string) Stat {
	return Stats(Diff(Lines(a), Lines(b)))
}

// Unified renders a compact unified-style diff with the given number of
// context lines, for human inspection in experiment output (E5 prints the
// Figure 3 to Figure 4 delta this way).
func Unified(a, b []string, context int) string {
	edits := Diff(a, b)
	if !Stats(edits).Changed() {
		return ""
	}
	var sb strings.Builder
	// Identify hunks: runs of edits with at most `context` equal lines
	// of separation.
	type hunk struct{ start, end int }
	var hunks []hunk
	cur := -1
	lastChange := -1
	for idx, e := range edits {
		if e.Op == Equal {
			continue
		}
		if cur == -1 || idx-lastChange > 2*context {
			hunks = append(hunks, hunk{start: idx, end: idx})
			cur = len(hunks) - 1
		}
		hunks[cur].end = idx
		lastChange = idx
	}
	for hi, h := range hunks {
		if hi > 0 {
			sb.WriteString("...\n")
		}
		start := h.start - context
		if start < 0 {
			start = 0
		}
		end := h.end + context
		if end >= len(edits) {
			end = len(edits) - 1
		}
		for _, e := range edits[start : end+1] {
			fmt.Fprintf(&sb, "%s%s\n", e.Op, e.Line)
		}
	}
	return sb.String()
}
