package xpath

import (
	"testing"

	"repro/internal/xmldom"
)

func TestSelectElements(t *testing.T) {
	doc := xmldom.MustParseString(`<r><a x="1">text<b/></a></r>`)
	// Mixed node-set: SelectElements keeps only elements.
	els, err := SelectElements(doc, "//a/node() | //a | //@x")
	if err != nil {
		t.Fatal(err)
	}
	if len(els) != 2 { // a and b; text and attr dropped
		t.Fatalf("elements = %d: %v", len(els), els)
	}
	if els[0].Name.Local != "a" || els[1].Name.Local != "b" {
		t.Errorf("order = %v", els)
	}
	if _, err := SelectElements(doc, "]["); err == nil {
		t.Error("bad expression accepted")
	}
}

func TestPackageHelperErrors(t *testing.T) {
	doc := xmldom.MustParseString(`<r/>`)
	// Compile errors propagate through every cached helper.
	if _, err := EvalString(doc, "]["); err == nil {
		t.Error("EvalString bad expr accepted")
	}
	if _, err := EvalNumber(doc, "]["); err == nil {
		t.Error("EvalNumber bad expr accepted")
	}
	if _, err := EvalBool(doc, "]["); err == nil {
		t.Error("EvalBool bad expr accepted")
	}
	if _, err := First(doc, "]["); err == nil {
		t.Error("First bad expr accepted")
	}
	// Eval errors propagate too (undefined variable).
	if _, err := EvalString(doc, "string($nope)"); err == nil {
		t.Error("EvalString eval error swallowed")
	}
	if _, err := EvalNumber(doc, "number($nope)"); err == nil {
		t.Error("EvalNumber eval error swallowed")
	}
	if _, err := EvalBool(doc, "boolean($nope)"); err == nil {
		t.Error("EvalBool eval error swallowed")
	}
	// The predicate must actually run for the error to surface, so it
	// targets the root element that exists.
	if _, err := First(doc, "/r[$nope]"); err == nil {
		t.Error("First eval error swallowed")
	}
	// First on empty result is nil, nil.
	n, err := First(doc, "//missing")
	if err != nil || n != nil {
		t.Errorf("First empty = %v, %v", n, err)
	}
}

func TestNamespaceURIAndNameFunctions(t *testing.T) {
	doc := xmldom.MustParseString(
		`<r xmlns:p="urn:p"><p:x attr="v"/><?pi data?></r>`)
	tests := []struct {
		expr string
		want string
	}{
		{"namespace-uri(//*[local-name()='x'])", "urn:p"},
		{"namespace-uri(/r)", ""},
		{"local-name(//@attr)", "attr"},
		{"namespace-uri(//@attr)", ""},
		{"local-name(//processing-instruction())", "pi"},
		{"namespace-uri()", ""},         // context node: the document
		{"local-name(//comment())", ""}, // empty set
	}
	for _, tt := range tests {
		got, err := EvalString(doc, tt.expr)
		if err != nil {
			t.Fatalf("EvalString(%q): %v", tt.expr, err)
		}
		if got != tt.want {
			t.Errorf("EvalString(%q) = %q, want %q", tt.expr, got, tt.want)
		}
	}
}

func TestMatchesOnDetachedTree(t *testing.T) {
	// Patterns must work for trees that were never attached to a
	// Document (the presentation engine builds such fragments).
	root := xmldom.NewElement("page")
	body := root.AddElement("body")
	item := body.AddElement("item")
	ok, err := Matches(MustCompile("//item"), item)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("absolute pattern failed on detached tree")
	}
	ok, err = Matches(MustCompile("body/item"), item)
	if err != nil || !ok {
		t.Errorf("relative pattern on detached tree = %v, %v", ok, err)
	}
	ok, err = Matches(MustCompile("//other"), item)
	if err != nil || ok {
		t.Errorf("non-matching pattern = %v, %v", ok, err)
	}
}

func TestMatchesNonNodeSetPattern(t *testing.T) {
	doc := xmldom.MustParseString(`<r/>`)
	if _, err := Matches(MustCompile("1+1"), doc.Root()); err == nil {
		t.Error("numeric pattern accepted")
	}
}

func TestIDFromNodeSetArgument(t *testing.T) {
	doc := xmldom.MustParseString(
		`<r><refs>guitar guernica</refs><painting id="guitar"/><painting id="guernica"/></r>`)
	nodes, err := Select(doc, "id(//refs)")
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 2 {
		t.Errorf("id(node-set) = %d nodes, want 2", len(nodes))
	}
}

func TestCachedCompileReuse(t *testing.T) {
	doc := xmldom.MustParseString(`<r><a/></r>`)
	// Same source twice: second call must hit the cache and agree.
	for i := 0; i < 2; i++ {
		nodes, err := Select(doc, "//a")
		if err != nil || len(nodes) != 1 {
			t.Fatalf("iteration %d: %v, %v", i, nodes, err)
		}
	}
}

func TestAxisStringNames(t *testing.T) {
	if axisChild.String() != "child" {
		t.Errorf("axisChild = %q", axisChild.String())
	}
	if axis(99).String() != "unknown-axis" {
		t.Errorf("bogus axis = %q", axis(99).String())
	}
}
