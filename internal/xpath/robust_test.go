package xpath

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/xmldom"
)

// TestQuickCompileNeverPanics property-tests that arbitrary input strings
// produce either a compiled expression or an error — never a panic.
func TestQuickCompileNeverPanics(t *testing.T) {
	f := func(src string) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("Compile(%q) panicked: %v", src, r)
				ok = false
			}
		}()
		_, _ = Compile(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestQuickCompileFragments stresses the parser with recombined fragments
// of real XPath syntax, which reach deeper parse states than random
// unicode.
func TestQuickCompileFragments(t *testing.T) {
	fragments := []string{
		"//", "/", "painting", "[", "]", "(", ")", "@", "id", "'x'",
		"1", "+", "-", "*", "and", "or", "div", "mod", "|", "=", "!=",
		"<", ">", "::", "ancestor", "child", "..", ".", ",", "count",
		"$v", "position()", " ",
	}
	doc := xmldom.MustParseString(`<a><b id="x"/></a>`)
	f := func(picks []uint8) (ok bool) {
		var sb strings.Builder
		for _, p := range picks {
			sb.WriteString(fragments[int(p)%len(fragments)])
			if sb.Len() > 80 {
				break
			}
		}
		src := sb.String()
		defer func() {
			if r := recover(); r != nil {
				t.Logf("source %q panicked: %v", src, r)
				ok = false
			}
		}()
		expr, err := Compile(src)
		if err != nil {
			return true // rejection is fine; panic is not
		}
		// Compiled expressions must also evaluate without panicking
		// (errors allowed, e.g. undefined variables).
		_, _ = expr.Eval(&Context{Node: doc})
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestProcessingInstructionSelection(t *testing.T) {
	doc := xmldom.MustParseString(`<r><?style a?><?style b?><?other c?></r>`)
	nodes, err := Select(doc, "//processing-instruction()")
	if err != nil || len(nodes) != 3 {
		t.Errorf("all PIs = %d, %v", len(nodes), err)
	}
	nodes, err = Select(doc, "//processing-instruction('style')")
	if err != nil || len(nodes) != 2 {
		t.Errorf("style PIs = %d, %v", len(nodes), err)
	}
	if got := nodes[0].StringValue(); got != "a" {
		t.Errorf("PI string-value = %q", got)
	}
}

func TestCommentSelection(t *testing.T) {
	doc := xmldom.MustParseString(`<r><!--one--><x><!--two--></x></r>`)
	nodes, err := Select(doc, "//comment()")
	if err != nil || len(nodes) != 2 {
		t.Fatalf("comments = %d, %v", len(nodes), err)
	}
	if nodes[0].StringValue() != "one" {
		t.Errorf("comment value = %q", nodes[0].StringValue())
	}
}

func TestVariablesInPredicates(t *testing.T) {
	doc := xmldom.MustParseString(`<r><p year="1907"/><p year="1913"/><p year="1937"/></r>`)
	expr := MustCompile("//p[@year >= $from][@year <= $to]")
	v, err := expr.Eval(&Context{Node: doc, Vars: map[string]Value{
		"from": Number(1910), "to": Number(1920),
	}})
	if err != nil {
		t.Fatal(err)
	}
	ns := v.(NodeSet)
	if len(ns) != 1 {
		t.Fatalf("banded selection = %d nodes", len(ns))
	}
	if got := ns[0].(*xmldom.Element).AttrValue("year"); got != "1913" {
		t.Errorf("selected year %s", got)
	}
}

func TestNestedPredicatesWithPosition(t *testing.T) {
	doc := xmldom.MustParseString(
		`<r><g><m/><m/><m/></g><g><m/></g></r>`)
	// Groups whose last member is their third member.
	nodes, err := Select(doc, "//g[m[position()=3]]")
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 1 {
		t.Errorf("groups with 3 members = %d", len(nodes))
	}
	// position() inside a filter-expression predicate runs over the
	// whole document-ordered set.
	nodes, err = Select(doc, "(//m)[last()]")
	if err != nil || len(nodes) != 1 {
		t.Fatalf("(//m)[last()] = %v, %v", nodes, err)
	}
}

func TestSelfAxisFiltering(t *testing.T) {
	doc := xmldom.MustParseString(`<r><a/><b/></r>`)
	nodes, err := Select(doc, "/r/*/self::a")
	if err != nil || len(nodes) != 1 {
		t.Errorf("self::a = %d, %v", len(nodes), err)
	}
}

func TestStringValueOfDocumentOrderFirst(t *testing.T) {
	// StringOf(node-set) uses the first node in document order even if
	// the set is unsorted.
	doc := xmldom.MustParseString(`<r><a>first</a><b>second</b></r>`)
	a, _ := First(doc, "//a")
	b, _ := First(doc, "//b")
	unsorted := NodeSet{b, a}
	if got := StringOf(unsorted); got != "first" {
		t.Errorf("StringOf(unsorted set) = %q, want first", got)
	}
}
