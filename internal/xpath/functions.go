package xpath

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/xmldom"
)

func (n *funcCall) eval(ctx *evalCtx) (Value, error) {
	if fn, ok := coreFunctions[n.name]; ok {
		return fn(ctx, n)
	}
	if ctx.env.Functions != nil {
		if fn, ok := ctx.env.Functions[n.name]; ok {
			args, err := n.evalArgs(ctx)
			if err != nil {
				return nil, err
			}
			return fn(ctx.env, args)
		}
	}
	return nil, fmt.Errorf("xpath: unknown function %s()", n.name)
}

func (n *funcCall) evalArgs(ctx *evalCtx) ([]Value, error) {
	args := make([]Value, len(n.args))
	for i, a := range n.args {
		v, err := a.eval(ctx)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	return args, nil
}

// coreFn implements a core-library function with access to the raw call for
// arity checking and context-default arguments.
type coreFn func(ctx *evalCtx, call *funcCall) (Value, error)

func arity(call *funcCall, min, max int) error {
	n := len(call.args)
	if n < min || (max >= 0 && n > max) {
		return fmt.Errorf("xpath: %s() called with %d arguments", call.name, n)
	}
	return nil
}

// argOrContext evaluates the optional single argument, defaulting to the
// context node as a node-set (for string(), number(), etc.).
func argOrContext(ctx *evalCtx, call *funcCall) (Value, error) {
	if len(call.args) == 0 {
		return NodeSet{ctx.node}, nil
	}
	return call.args[0].eval(ctx)
}

// nodeSetArg evaluates argument i and requires a node-set.
func nodeSetArg(ctx *evalCtx, call *funcCall, i int) (NodeSet, error) {
	v, err := call.args[i].eval(ctx)
	if err != nil {
		return nil, err
	}
	ns, ok := v.(NodeSet)
	if !ok {
		return nil, fmt.Errorf("xpath: %s() argument %d is %s, want node-set", call.name, i+1, v.Kind())
	}
	return ns, nil
}

var coreFunctions map[string]coreFn

func init() {
	coreFunctions = map[string]coreFn{
		// Node-set functions.
		"last": func(ctx *evalCtx, call *funcCall) (Value, error) {
			if err := arity(call, 0, 0); err != nil {
				return nil, err
			}
			return Number(ctx.size), nil
		},
		"position": func(ctx *evalCtx, call *funcCall) (Value, error) {
			if err := arity(call, 0, 0); err != nil {
				return nil, err
			}
			return Number(ctx.pos), nil
		},
		"count": func(ctx *evalCtx, call *funcCall) (Value, error) {
			if err := arity(call, 1, 1); err != nil {
				return nil, err
			}
			ns, err := nodeSetArg(ctx, call, 0)
			if err != nil {
				return nil, err
			}
			return Number(len(sortDocOrder(ns))), nil
		},
		"id":            fnID,
		"local-name":    fnLocalName,
		"namespace-uri": fnNamespaceURI,
		"name":          fnName,
		// String functions.
		"string": func(ctx *evalCtx, call *funcCall) (Value, error) {
			if err := arity(call, 0, 1); err != nil {
				return nil, err
			}
			v, err := argOrContext(ctx, call)
			if err != nil {
				return nil, err
			}
			return String(StringOf(v)), nil
		},
		"concat": func(ctx *evalCtx, call *funcCall) (Value, error) {
			if err := arity(call, 2, -1); err != nil {
				return nil, err
			}
			args, err := call.evalArgs(ctx)
			if err != nil {
				return nil, err
			}
			var sb strings.Builder
			for _, a := range args {
				sb.WriteString(StringOf(a))
			}
			return String(sb.String()), nil
		},
		"starts-with": fnStringPair(func(a, b string) Value { return Boolean(strings.HasPrefix(a, b)) }),
		"contains":    fnStringPair(func(a, b string) Value { return Boolean(strings.Contains(a, b)) }),
		"substring-before": fnStringPair(func(a, b string) Value {
			if i := strings.Index(a, b); i >= 0 {
				return String(a[:i])
			}
			return String("")
		}),
		"substring-after": fnStringPair(func(a, b string) Value {
			if i := strings.Index(a, b); i >= 0 {
				return String(a[i+len(b):])
			}
			return String("")
		}),
		"substring": fnSubstring,
		"string-length": func(ctx *evalCtx, call *funcCall) (Value, error) {
			if err := arity(call, 0, 1); err != nil {
				return nil, err
			}
			v, err := argOrContext(ctx, call)
			if err != nil {
				return nil, err
			}
			return Number(len([]rune(StringOf(v)))), nil
		},
		"normalize-space": func(ctx *evalCtx, call *funcCall) (Value, error) {
			if err := arity(call, 0, 1); err != nil {
				return nil, err
			}
			v, err := argOrContext(ctx, call)
			if err != nil {
				return nil, err
			}
			return String(strings.Join(strings.Fields(StringOf(v)), " ")), nil
		},
		"translate": fnTranslate,
		// Boolean functions.
		"boolean": func(ctx *evalCtx, call *funcCall) (Value, error) {
			if err := arity(call, 1, 1); err != nil {
				return nil, err
			}
			v, err := call.args[0].eval(ctx)
			if err != nil {
				return nil, err
			}
			return Boolean(BoolOf(v)), nil
		},
		"not": func(ctx *evalCtx, call *funcCall) (Value, error) {
			if err := arity(call, 1, 1); err != nil {
				return nil, err
			}
			v, err := call.args[0].eval(ctx)
			if err != nil {
				return nil, err
			}
			return Boolean(!BoolOf(v)), nil
		},
		"true": func(ctx *evalCtx, call *funcCall) (Value, error) {
			if err := arity(call, 0, 0); err != nil {
				return nil, err
			}
			return Boolean(true), nil
		},
		"false": func(ctx *evalCtx, call *funcCall) (Value, error) {
			if err := arity(call, 0, 0); err != nil {
				return nil, err
			}
			return Boolean(false), nil
		},
		"lang": fnLang,
		// Number functions.
		"number": func(ctx *evalCtx, call *funcCall) (Value, error) {
			if err := arity(call, 0, 1); err != nil {
				return nil, err
			}
			v, err := argOrContext(ctx, call)
			if err != nil {
				return nil, err
			}
			return Number(NumberOf(v)), nil
		},
		"sum": func(ctx *evalCtx, call *funcCall) (Value, error) {
			if err := arity(call, 1, 1); err != nil {
				return nil, err
			}
			ns, err := nodeSetArg(ctx, call, 0)
			if err != nil {
				return nil, err
			}
			total := 0.0
			for _, n := range ns {
				total += stringToNumber(n.StringValue())
			}
			return Number(total), nil
		},
		"floor":   fnNumeric(math.Floor),
		"ceiling": fnNumeric(math.Ceil),
		"round":   fnNumeric(xpathRound),
	}
}

// xpathRound implements round() per §4.4: half rounds toward +infinity.
func xpathRound(f float64) float64 {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return f
	}
	return math.Floor(f + 0.5)
}

func fnNumeric(f func(float64) float64) coreFn {
	return func(ctx *evalCtx, call *funcCall) (Value, error) {
		if err := arity(call, 1, 1); err != nil {
			return nil, err
		}
		v, err := call.args[0].eval(ctx)
		if err != nil {
			return nil, err
		}
		return Number(f(NumberOf(v))), nil
	}
}

func fnStringPair(f func(a, b string) Value) coreFn {
	return func(ctx *evalCtx, call *funcCall) (Value, error) {
		if err := arity(call, 2, 2); err != nil {
			return nil, err
		}
		args, err := call.evalArgs(ctx)
		if err != nil {
			return nil, err
		}
		return f(StringOf(args[0]), StringOf(args[1])), nil
	}
}

func fnSubstring(ctx *evalCtx, call *funcCall) (Value, error) {
	if err := arity(call, 2, 3); err != nil {
		return nil, err
	}
	args, err := call.evalArgs(ctx)
	if err != nil {
		return nil, err
	}
	runes := []rune(StringOf(args[0]))
	start := xpathRound(NumberOf(args[1]))
	var end float64
	if len(args) == 3 {
		end = start + xpathRound(NumberOf(args[2]))
	} else {
		end = math.Inf(1)
	}
	if math.IsNaN(start) || math.IsNaN(end) {
		return String(""), nil
	}
	var sb strings.Builder
	for i, r := range runes {
		pos := float64(i + 1)
		if pos >= start && pos < end {
			sb.WriteRune(r)
		}
	}
	return String(sb.String()), nil
}

func fnTranslate(ctx *evalCtx, call *funcCall) (Value, error) {
	if err := arity(call, 3, 3); err != nil {
		return nil, err
	}
	args, err := call.evalArgs(ctx)
	if err != nil {
		return nil, err
	}
	src := StringOf(args[0])
	from := []rune(StringOf(args[1]))
	to := []rune(StringOf(args[2]))
	mapping := make(map[rune]rune, len(from))
	remove := make(map[rune]bool)
	for i, r := range from {
		if _, seen := mapping[r]; seen || remove[r] {
			continue // first occurrence wins
		}
		if i < len(to) {
			mapping[r] = to[i]
		} else {
			remove[r] = true
		}
	}
	var sb strings.Builder
	for _, r := range src {
		if remove[r] {
			continue
		}
		if m, ok := mapping[r]; ok {
			sb.WriteRune(m)
			continue
		}
		sb.WriteRune(r)
	}
	return String(sb.String()), nil
}

func fnID(ctx *evalCtx, call *funcCall) (Value, error) {
	if err := arity(call, 1, 1); err != nil {
		return nil, err
	}
	v, err := call.args[0].eval(ctx)
	if err != nil {
		return nil, err
	}
	doc := ctx.node.Document()
	if doc == nil {
		return NodeSet{}, nil
	}
	var ids []string
	if ns, ok := v.(NodeSet); ok {
		for _, n := range ns {
			ids = append(ids, strings.Fields(n.StringValue())...)
		}
	} else {
		ids = strings.Fields(StringOf(v))
	}
	var out NodeSet
	for _, id := range ids {
		if e := doc.GetElementByID(id); e != nil {
			out = append(out, e)
		}
	}
	return sortDocOrder(out), nil
}

// nameOfNode returns the expanded name for name()/local-name()/
// namespace-uri(). Only elements, attributes and PIs have names.
func nameOfNode(n xmldom.Node) (xmldom.Name, bool) {
	switch v := n.(type) {
	case *xmldom.Element:
		return v.Name, true
	case *xmldom.Attr:
		return v.Name, true
	case *xmldom.ProcInst:
		return xmldom.Name{Local: v.Target}, true
	default:
		return xmldom.Name{}, false
	}
}

func namedNodeArg(ctx *evalCtx, call *funcCall) (xmldom.Name, bool, error) {
	var target xmldom.Node
	if len(call.args) == 0 {
		target = ctx.node
	} else {
		ns, err := nodeSetArg(ctx, call, 0)
		if err != nil {
			return xmldom.Name{}, false, err
		}
		ns = sortDocOrder(ns)
		if len(ns) == 0 {
			return xmldom.Name{}, false, nil
		}
		target = ns[0]
	}
	name, ok := nameOfNode(target)
	return name, ok, nil
}

func fnLocalName(ctx *evalCtx, call *funcCall) (Value, error) {
	if err := arity(call, 0, 1); err != nil {
		return nil, err
	}
	name, ok, err := namedNodeArg(ctx, call)
	if err != nil || !ok {
		return String(""), err
	}
	return String(name.Local), nil
}

func fnNamespaceURI(ctx *evalCtx, call *funcCall) (Value, error) {
	if err := arity(call, 0, 1); err != nil {
		return nil, err
	}
	name, ok, err := namedNodeArg(ctx, call)
	if err != nil || !ok {
		return String(""), err
	}
	return String(name.Space), nil
}

// fnName returns the local name: xmldom resolves prefixes away, so the
// qualified-name form is unavailable. Documented deviation from §4.1.
func fnName(ctx *evalCtx, call *funcCall) (Value, error) {
	return fnLocalName(ctx, call)
}

func fnLang(ctx *evalCtx, call *funcCall) (Value, error) {
	if err := arity(call, 1, 1); err != nil {
		return nil, err
	}
	v, err := call.args[0].eval(ctx)
	if err != nil {
		return nil, err
	}
	want := strings.ToLower(StringOf(v))
	// Find the nearest xml:lang on self or ancestors.
	cur := ctx.node
	for cur != nil {
		if el, ok := cur.(*xmldom.Element); ok {
			if lang, present := el.Attr(xmldom.XMLNamespace, "lang"); present {
				got := strings.ToLower(lang)
				return Boolean(got == want || strings.HasPrefix(got, want+"-")), nil
			}
		}
		cur = cur.ParentNode()
	}
	return Boolean(false), nil
}
