package xpath

import (
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/xmldom"
)

// Kind enumerates the four XPath 1.0 value types.
type Kind int

// Value kinds.
const (
	NodeSetKind Kind = iota + 1
	BooleanKind
	NumberKind
	StringKind
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case NodeSetKind:
		return "node-set"
	case BooleanKind:
		return "boolean"
	case NumberKind:
		return "number"
	case StringKind:
		return "string"
	default:
		return "unknown"
	}
}

// Value is one of NodeSet, Boolean, Number or String.
type Value interface {
	Kind() Kind
}

// NodeSet is an ordered, duplicate-free collection of nodes.
type NodeSet []xmldom.Node

// Kind implements Value.
func (NodeSet) Kind() Kind { return NodeSetKind }

// Boolean is an XPath boolean.
type Boolean bool

// Kind implements Value.
func (Boolean) Kind() Kind { return BooleanKind }

// Number is an XPath number (IEEE 754 double).
type Number float64

// Kind implements Value.
func (Number) Kind() Kind { return NumberKind }

// String is an XPath string.
type String string

// Kind implements Value.
func (String) Kind() Kind { return StringKind }

// sortDocOrder sorts the set into document order and removes duplicates.
func sortDocOrder(ns NodeSet) NodeSet {
	if len(ns) <= 1 {
		return ns
	}
	sort.SliceStable(ns, func(i, j int) bool {
		return xmldom.CompareDocOrder(ns[i], ns[j]) < 0
	})
	out := ns[:1]
	for _, n := range ns[1:] {
		if n != out[len(out)-1] {
			out = append(out, n)
		}
	}
	return out
}

// StringOf converts any value to a string per XPath 1.0 §4.2.
func StringOf(v Value) string {
	switch t := v.(type) {
	case String:
		return string(t)
	case Number:
		return formatNumber(float64(t))
	case Boolean:
		if t {
			return "true"
		}
		return "false"
	case NodeSet:
		if len(t) == 0 {
			return ""
		}
		first := t[0]
		for _, n := range t[1:] {
			if xmldom.CompareDocOrder(n, first) < 0 {
				first = n
			}
		}
		return first.StringValue()
	default:
		return ""
	}
}

// formatNumber renders a float per the XPath string() rules: integers
// without a decimal point, NaN as "NaN", infinities as "±Infinity".
func formatNumber(f float64) string {
	switch {
	case math.IsNaN(f):
		return "NaN"
	case math.IsInf(f, 1):
		return "Infinity"
	case math.IsInf(f, -1):
		return "-Infinity"
	case f == math.Trunc(f) && math.Abs(f) < 1e15:
		return strconv.FormatInt(int64(f), 10)
	default:
		return strconv.FormatFloat(f, 'g', -1, 64)
	}
}

// NumberOf converts any value to a number per XPath 1.0 §4.4.
func NumberOf(v Value) float64 {
	switch t := v.(type) {
	case Number:
		return float64(t)
	case Boolean:
		if t {
			return 1
		}
		return 0
	case String:
		return stringToNumber(string(t))
	case NodeSet:
		return stringToNumber(StringOf(t))
	default:
		return math.NaN()
	}
}

func stringToNumber(s string) float64 {
	s = strings.TrimSpace(s)
	if s == "" {
		return math.NaN()
	}
	// XPath number syntax is a subset of Go's: no exponent, no hex, no
	// "Inf". Validate before delegating.
	body := s
	if strings.HasPrefix(body, "-") {
		body = body[1:]
	}
	if body == "" || strings.Count(body, ".") > 1 {
		return math.NaN()
	}
	for _, r := range body {
		if r != '.' && (r < '0' || r > '9') {
			return math.NaN()
		}
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return math.NaN()
	}
	return f
}

// BoolOf converts any value to a boolean per XPath 1.0 §4.3.
func BoolOf(v Value) bool {
	switch t := v.(type) {
	case Boolean:
		return bool(t)
	case Number:
		f := float64(t)
		return f != 0 && !math.IsNaN(f)
	case String:
		return len(t) > 0
	case NodeSet:
		return len(t) > 0
	default:
		return false
	}
}

// compareOp identifies a comparison operator for compareValues.
type compareOp int

const (
	opEq compareOp = iota
	opNeq
	opLt
	opLte
	opGt
	opGte
)

// compareValues implements the XPath 1.0 §3.4 comparison rules, including
// the existential semantics when one or both operands are node-sets.
func compareValues(op compareOp, a, b Value) bool {
	na, aIsSet := a.(NodeSet)
	nb, bIsSet := b.(NodeSet)
	switch {
	case aIsSet && bIsSet:
		// True iff some pair of nodes satisfies the comparison on
		// their string-values.
		for _, x := range na {
			for _, y := range nb {
				if compareAtomic(op, String(x.StringValue()), String(y.StringValue())) {
					return true
				}
			}
		}
		return false
	case aIsSet:
		// Against a boolean the whole set converts via boolean(), not
		// per node (§3.4).
		if b.Kind() == BooleanKind {
			return compareAtomic(op, Boolean(BoolOf(a)), b)
		}
		for _, x := range na {
			if compareNodeAgainst(op, x, b, false) {
				return true
			}
		}
		return false
	case bIsSet:
		if a.Kind() == BooleanKind {
			return compareAtomic(op, a, Boolean(BoolOf(b)))
		}
		for _, y := range nb {
			if compareNodeAgainst(op, y, a, true) {
				return true
			}
		}
		return false
	default:
		return compareAtomic(op, a, b)
	}
}

// compareNodeAgainst compares one node against a number or string (the
// boolean case is handled set-wide by compareValues). When swapped is
// true the node is the right operand.
func compareNodeAgainst(op compareOp, n xmldom.Node, v Value, swapped bool) bool {
	var nodeVal Value
	if v.Kind() == NumberKind {
		nodeVal = Number(stringToNumber(n.StringValue()))
	} else {
		nodeVal = String(n.StringValue())
	}
	if swapped {
		return compareAtomic(op, v, nodeVal)
	}
	return compareAtomic(op, nodeVal, v)
}

// compareAtomic compares two non-node-set values.
func compareAtomic(op compareOp, a, b Value) bool {
	switch op {
	case opEq, opNeq:
		var eq bool
		switch {
		case a.Kind() == BooleanKind || b.Kind() == BooleanKind:
			eq = BoolOf(a) == BoolOf(b)
		case a.Kind() == NumberKind || b.Kind() == NumberKind:
			eq = NumberOf(a) == NumberOf(b)
		default:
			eq = StringOf(a) == StringOf(b)
		}
		if op == opNeq {
			return !eq
		}
		return eq
	default:
		// Relational operators always convert to numbers.
		x, y := NumberOf(a), NumberOf(b)
		switch op {
		case opLt:
			return x < y
		case opLte:
			return x <= y
		case opGt:
			return x > y
		case opGte:
			return x >= y
		}
		return false
	}
}
