// Package xpath implements an XPath 1.0 expression engine over the
// xmldom document model.
//
// The implementation covers the full expression grammar (location paths,
// filter expressions, unions, the arithmetic/relational/boolean operators),
// twelve of the thirteen axes (the namespace axis is omitted — namespace
// nodes are not modeled by xmldom), the four value types with the
// spec-defined conversion and comparison rules, and the complete core
// function library. Variable bindings, extension functions and prefix
// bindings for qualified name tests are supplied through Context.
//
// Two deliberate deviations from the recommendation, both documented at the
// point of use: name() returns the local name (prefixes are not preserved
// by the DOM), and the namespace axis is unsupported.
//
// XPointer's xpointer() scheme (package xpointer) and the presentation
// engine's template match patterns (package presentation) are the primary
// in-repo consumers, exactly as the paper's XLink/XPointer substrate
// requires.
package xpath
