package xpath

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xmldom"
)

func TestStringOfNumberFormatting(t *testing.T) {
	tests := []struct {
		in   float64
		want string
	}{
		{0, "0"},
		{1, "1"},
		{-1, "-1"},
		{1.5, "1.5"},
		{-0.25, "-0.25"},
		{1e14, "100000000000000"},
		{math.NaN(), "NaN"},
		{math.Inf(1), "Infinity"},
		{math.Inf(-1), "-Infinity"},
		{42, "42"},
	}
	for _, tt := range tests {
		if got := StringOf(Number(tt.in)); got != tt.want {
			t.Errorf("StringOf(%v) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestNumberOfConversions(t *testing.T) {
	if NumberOf(Boolean(true)) != 1 || NumberOf(Boolean(false)) != 0 {
		t.Error("boolean to number wrong")
	}
	if NumberOf(String(" 12.5 ")) != 12.5 {
		t.Error("string with spaces should parse")
	}
	for _, s := range []string{"", "abc", "1e5", "0x10", "1.2.3", "-", "--1", "Inf", "+5"} {
		if !math.IsNaN(NumberOf(String(s))) {
			t.Errorf("NumberOf(%q) should be NaN, got %v", s, NumberOf(String(s)))
		}
	}
	if NumberOf(String("-3.5")) != -3.5 {
		t.Error("negative decimal should parse")
	}
	// Node-set converts through its first node's string-value.
	doc := xmldom.MustParseString(`<a><b>10</b><b>20</b></a>`)
	nodes, err := Select(doc, "//b")
	if err != nil {
		t.Fatal(err)
	}
	if got := NumberOf(NodeSet(nodes)); got != 10 {
		t.Errorf("NumberOf(node-set) = %v, want first node 10", got)
	}
}

func TestBoolOfConversions(t *testing.T) {
	cases := []struct {
		v    Value
		want bool
	}{
		{Number(0), false},
		{Number(math.NaN()), false},
		{Number(-1), true},
		{Number(math.Inf(1)), true},
		{String(""), false},
		{String("0"), true}, // non-empty string is true, even "0"
		{Boolean(true), true},
		{NodeSet{}, false},
	}
	for _, tt := range cases {
		if got := BoolOf(tt.v); got != tt.want {
			t.Errorf("BoolOf(%#v) = %v, want %v", tt.v, got, tt.want)
		}
	}
}

// TestComparisonMatrix exercises the §3.4 comparison rules across type
// combinations, including the existential node-set semantics.
func TestComparisonMatrix(t *testing.T) {
	doc := xmldom.MustParseString(
		`<m><p year="1907"/><p year="1913"/><q year="1913"/><empty/></m>`)
	tests := []struct {
		expr string
		want bool
	}{
		// node-set vs node-set: existential over string-values.
		{"//p/@year = //q/@year", true},   // 1913 on both sides
		{"//p/@year != //q/@year", true},  // 1907 != 1913 exists
		{"//empty/@x = //q/@year", false}, // empty set never equal
		{"//empty/@x != //q/@year", false},
		// node-set vs number.
		{"//p/@year = 1907", true},
		{"//p/@year > 1910", true},
		{"//p/@year < 1900", false},
		{"1913 = //q/@year", true},
		{"1900 >= //p/@year", false},
		{"2000 >= //p/@year", true},
		// node-set vs string.
		{"//p/@year = '1907'", true},
		{"'1913' = //p/@year", true},
		// node-set vs boolean: set emptiness.
		{"//p/@year = true()", true},
		{"//empty/@x = true()", false},
		{"//empty/@x = false()", true},
		{"true() = //p", true},
		// atomic mixes.
		{"1 = true()", true},
		{"0 = false()", true},
		{"'' = false()", true},
		{"'x' = true()", true},
		{"2 > '1'", true},
		{"'2' < 10", true},
		{"'abc' < 1", false}, // NaN comparisons are false
		{"'abc' >= 1", false},
	}
	for _, tt := range tests {
		t.Run(tt.expr, func(t *testing.T) {
			got, err := EvalBool(doc, tt.expr)
			if err != nil {
				t.Fatalf("EvalBool(%q): %v", tt.expr, err)
			}
			if got != tt.want {
				t.Errorf("EvalBool(%q) = %v, want %v", tt.expr, got, tt.want)
			}
		})
	}
}

func TestFollowingPrecedingAxes(t *testing.T) {
	doc := xmldom.MustParseString(
		`<r><a><a1/><a2/></a><b><b1/></b><c><c1/><c2/></c></r>`)
	tests := []struct {
		expr string
		want []string
	}{
		{"//b/following::*", []string{"c", "c1", "c2"}},
		{"//b/preceding::*", []string{"a", "a1", "a2"}},
		{"//b1/following::*", []string{"c", "c1", "c2"}},
		{"//c1/preceding::*", []string{"a", "a1", "a2", "b", "b1"}},
		{"//a/following-sibling::*", []string{"b", "c"}},
		{"//c/preceding-sibling::*", []string{"a", "b"}},
		// preceding excludes ancestors.
		{"//b1/preceding::*", []string{"a", "a1", "a2"}},
	}
	for _, tt := range tests {
		nodes, err := Select(doc, tt.expr)
		if err != nil {
			t.Fatalf("Select(%q): %v", tt.expr, err)
		}
		var names []string
		for _, n := range nodes {
			names = append(names, n.(*xmldom.Element).Name.Local)
		}
		if len(names) != len(tt.want) {
			t.Errorf("Select(%q) = %v, want %v", tt.expr, names, tt.want)
			continue
		}
		for i := range names {
			if names[i] != tt.want[i] {
				t.Errorf("Select(%q)[%d] = %s, want %s", tt.expr, i, names[i], tt.want[i])
			}
		}
	}
}

// TestPrecedingAxisProximity: preceding::*[1] is the nearest preceding
// node in reverse document order.
func TestPrecedingAxisProximity(t *testing.T) {
	doc := xmldom.MustParseString(`<r><a/><b/><c/></r>`)
	n, err := First(doc, "//c/preceding::*[1]")
	if err != nil || n == nil {
		t.Fatalf("First: %v %v", n, err)
	}
	if got := n.(*xmldom.Element).Name.Local; got != "b" {
		t.Errorf("nearest preceding = %s, want b", got)
	}
}

// TestQuickCountMatchesManualWalk property-tests count(//el) against a
// manual tree count for generated documents.
func TestQuickCountMatchesManualWalk(t *testing.T) {
	f := func(shape []uint8) bool {
		root := xmldom.NewElement("root")
		cur := root
		targets := 0
		for _, b := range shape {
			switch b % 3 {
			case 0:
				cur = cur.AddElement("t")
				targets++
			case 1:
				cur.AddElement("other")
			case 2:
				if p := cur.Parent(); p != nil {
					cur = p
				}
			}
			if targets > 60 {
				break
			}
		}
		doc := xmldom.NewDocument(root)
		got, err := EvalNumber(doc, "count(//t)")
		if err != nil {
			t.Log(err)
			return false
		}
		return int(got) == targets
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickUnionIdempotent property-tests that x|x has the same size as x
// and stays in document order.
func TestQuickUnionIdempotent(t *testing.T) {
	doc := xmldom.MustParseString(`<r><a/><b><a/></b><a/></r>`)
	exprs := []string{"//a", "//b", "//*", "/r/a"}
	f := func(i, j uint8) bool {
		e1 := exprs[int(i)%len(exprs)]
		e2 := exprs[int(j)%len(exprs)]
		single, err := Select(doc, e1)
		if err != nil {
			return false
		}
		self, err := Select(doc, e1+" | "+e1)
		if err != nil {
			return false
		}
		if len(self) != len(single) {
			return false
		}
		both, err := Select(doc, e1+" | "+e2)
		if err != nil {
			return false
		}
		for k := 1; k < len(both); k++ {
			if xmldom.CompareDocOrder(both[k-1], both[k]) >= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
