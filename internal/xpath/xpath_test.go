package xpath

import (
	"math"
	"strings"
	"testing"

	"repro/internal/xmldom"
)

// museumDoc is the shared fixture: a small version of the paper's museum.
const museumSrc = `<museum name="Reina Sofia">
  <painter id="picasso" born="1881">
    <name>Pablo Picasso</name>
    <painting id="guitar" year="1913"><title>Guitar</title></painting>
    <painting id="guernica" year="1937"><title>Guernica</title></painting>
    <painting id="avignon" year="1907"><title>Les Demoiselles d'Avignon</title></painting>
  </painter>
  <painter id="dali" born="1904">
    <name>Salvador Dali</name>
    <painting id="memory" year="1931"><title>The Persistence of Memory</title></painting>
  </painter>
  <movement id="cubism"><title>Cubism</title></movement>
</museum>`

func museum(t *testing.T) *xmldom.Document {
	t.Helper()
	doc, err := xmldom.ParseString(museumSrc)
	if err != nil {
		t.Fatalf("fixture parse: %v", err)
	}
	return doc
}

func TestSelectPaths(t *testing.T) {
	doc := museum(t)
	tests := []struct {
		expr string
		want int // number of nodes
	}{
		{"/museum", 1},
		{"/museum/painter", 2},
		{"/museum/painter/painting", 4},
		{"//painting", 4},
		{"//painting/title", 4},
		{"/museum/*", 3},
		{"//painter[@id='picasso']/painting", 3},
		{"//painting[@year='1937']", 1},
		{"//painting[@year>1910]", 3},
		{"//painting[@year<1910]", 1},
		{"//painter[name='Pablo Picasso']/painting", 3},
		{"//painting[1]", 2}, // first painting of each painter
		{"//painting[last()]", 2},
		{"//painting[position()=2]", 1},
		{"/museum/painter[2]/painting", 1},
		{"//painter/painting[title]", 4},
		{"//painter/painting[title='Guitar']", 1},
		{"//@id", 7},
		{"//painting/@year", 4},
		{"/museum/painter[1]/painting[2]/preceding-sibling::painting", 1},
		{"/museum/painter[1]/painting[1]/following-sibling::painting", 2},
		{"//painting[@id='guernica']/ancestor::painter", 1},
		{"//painting[@id='guernica']/ancestor-or-self::*", 3},
		{"//title/parent::painting", 4},
		{"//painting/..", 2},
		{"//painting/self::painting", 4},
		{"descendant::painting", 4},
		{"//painter[1]/descendant-or-self::*", 8}, // painter+name+3 paintings+3 titles
		{"//movement | //painter", 3},
		{"//painting[@id='guitar'] | //painting[@id='guitar']", 1}, // dedup
		{"id('guitar')", 1},
		{"id('guitar dali')", 2},
		{"//painting[not(@year='1913')]", 3},
		{"//painter[count(painting)=3]", 1},
		{"//painter[painting/@year=1931]", 1},
		{"/museum/comment()", 0},
		{"//text()", 19}, // 7 content runs + 12 layout-whitespace runs
		{"/museum/painter[1]/painting[1]/following::painting", 3},
		{"/museum/painter[2]/painting[1]/preceding::painting", 3},
		{"//painting[starts-with(@id,'gu')]", 2},
		{"//painting[contains(title,'Memory')]", 1},
		{"*", 1}, // relative from document: the root element
	}
	for _, tt := range tests {
		t.Run(tt.expr, func(t *testing.T) {
			nodes, err := Select(doc, tt.expr)
			if err != nil {
				t.Fatalf("Select(%q): %v", tt.expr, err)
			}
			if len(nodes) != tt.want {
				t.Errorf("Select(%q) = %d nodes, want %d", tt.expr, len(nodes), tt.want)
			}
		})
	}
}

func TestSelectFromElementContext(t *testing.T) {
	doc := museum(t)
	picasso, err := First(doc, "//painter[@id='picasso']")
	if err != nil || picasso == nil {
		t.Fatalf("picasso lookup: %v %v", picasso, err)
	}
	nodes, err := Select(picasso, "painting")
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 3 {
		t.Errorf("relative painting count = %d, want 3", len(nodes))
	}
	// Absolute path from an element context still starts at the root.
	nodes, err = Select(picasso, "/museum/movement")
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 1 {
		t.Errorf("absolute from element = %d, want 1", len(nodes))
	}
	// .. axis
	up, err := Select(picasso, "..")
	if err != nil || len(up) != 1 {
		t.Fatalf(".. = %v, %v", up, err)
	}
	if el, ok := up[0].(*xmldom.Element); !ok || el.Name.Local != "museum" {
		t.Errorf(".. selected %v", up[0])
	}
}

func TestDocumentOrderOfResults(t *testing.T) {
	doc := museum(t)
	nodes, err := Select(doc, "//painting")
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for _, n := range nodes {
		ids = append(ids, n.(*xmldom.Element).AttrValue("id"))
	}
	want := "guitar,guernica,avignon,memory"
	if got := strings.Join(ids, ","); got != want {
		t.Errorf("order = %s, want %s", got, want)
	}
}

func TestStringFunctions(t *testing.T) {
	doc := museum(t)
	tests := []struct {
		expr string
		want string
	}{
		{"string(//painting[1]/title)", "Guitar"},
		{"concat('a','b','c')", "abc"},
		{"substring('12345', 2, 3)", "234"},
		{"substring('12345', 2)", "2345"},
		{"substring('12345', 1.5, 2.6)", "234"}, // spec example
		{"substring('12345', 0, 3)", "12"},      // spec example
		{"substring('12345', 0 div 0, 3)", ""},  // NaN start
		{"substring-before('1999/04/01','/')", "1999"},
		{"substring-after('1999/04/01','/')", "04/01"},
		{"substring-before('abc','x')", ""},
		{"substring-after('abc','x')", ""},
		{"normalize-space('  a   b  ')", "a b"},
		{"translate('bar','abc','ABC')", "BAr"},
		{"translate('--aaa--','abc-','ABC')", "AAA"},
		{"string(1)", "1"},
		{"string(1.5)", "1.5"},
		{"string(-0.5)", "-0.5"},
		{"string(1 div 0)", "Infinity"},
		{"string(-1 div 0)", "-Infinity"},
		{"string(0 div 0)", "NaN"},
		{"string(true())", "true"},
		{"string(false())", "false"},
		{"local-name(//painting[1])", "painting"},
		{"name(//painting[1])", "painting"},
		{"local-name(//nothing)", ""},
		{"string(//painter[1]/name)", "Pablo Picasso"},
	}
	for _, tt := range tests {
		t.Run(tt.expr, func(t *testing.T) {
			got, err := EvalString(doc, tt.expr)
			if err != nil {
				t.Fatalf("EvalString(%q): %v", tt.expr, err)
			}
			if got != tt.want {
				t.Errorf("EvalString(%q) = %q, want %q", tt.expr, got, tt.want)
			}
		})
	}
}

func TestNumberFunctions(t *testing.T) {
	doc := museum(t)
	tests := []struct {
		expr string
		want float64
	}{
		{"1+2*3", 7},
		{"(1+2)*3", 9},
		{"10 div 4", 2.5},
		{"10 mod 3", 1},
		{"5 mod -2", 1},
		{"-5 mod 2", -1},
		{"-(3)", -3},
		{"--3", 3},
		{"count(//painting)", 4},
		{"count(//painter)", 2},
		{"sum(//painting/@year)", 1913 + 1937 + 1907 + 1931},
		{"floor(2.6)", 2},
		{"ceiling(2.2)", 3},
		{"round(2.5)", 3},
		{"round(-2.5)", -2}, // half toward +inf
		{"round(2.4)", 2},
		{"string-length('hello')", 5},
		{"string-length(concat('a', 'bc'))", 3},
		{"number('12.5')", 12.5},
		{"number(' 42 ')", 42},
		{"number(true())", 1},
		{"//painter[1]/@born + 0", 1881},
		{"position()", 1},
		{"last()", 1},
	}
	for _, tt := range tests {
		t.Run(tt.expr, func(t *testing.T) {
			got, err := EvalNumber(doc, tt.expr)
			if err != nil {
				t.Fatalf("EvalNumber(%q): %v", tt.expr, err)
			}
			if got != tt.want {
				t.Errorf("EvalNumber(%q) = %v, want %v", tt.expr, got, tt.want)
			}
		})
	}
	// NaN cases.
	for _, expr := range []string{"number('abc')", "number('')", "number('1e5')", "0 div 0"} {
		got, err := EvalNumber(doc, expr)
		if err != nil {
			t.Fatalf("EvalNumber(%q): %v", expr, err)
		}
		if !math.IsNaN(got) {
			t.Errorf("EvalNumber(%q) = %v, want NaN", expr, got)
		}
	}
}

func TestBooleanFunctions(t *testing.T) {
	doc := museum(t)
	tests := []struct {
		expr string
		want bool
	}{
		{"true()", true},
		{"false()", false},
		{"not(false())", true},
		{"boolean(1)", true},
		{"boolean(0)", false},
		{"boolean('x')", true},
		{"boolean('')", false},
		{"boolean(//painting)", true},
		{"boolean(//sculpture)", false},
		{"1 < 2", true},
		{"2 <= 2", true},
		{"3 > 2 and 1 < 2", true},
		{"1 > 2 or 2 > 1", true},
		{"'a' = 'a'", true},
		{"'a' != 'b'", true},
		{"1 = '1'", true},
		{"true() = 'yes'", true},           // both convert to boolean true
		{"//painting/@year = 1937", true},  // existential
		{"//painting/@year != 1937", true}, // existential: some year differs
		{"not(//painting/@year = 1800)", true},
		{"count(//painting) = 4", true},
		{"contains('hello world', 'lo w')", true},
		{"starts-with('hello', 'he')", true},
		{"starts-with('hello', 'lo')", false},
	}
	for _, tt := range tests {
		t.Run(tt.expr, func(t *testing.T) {
			got, err := EvalBool(doc, tt.expr)
			if err != nil {
				t.Fatalf("EvalBool(%q): %v", tt.expr, err)
			}
			if got != tt.want {
				t.Errorf("EvalBool(%q) = %v, want %v", tt.expr, got, tt.want)
			}
		})
	}
}

func TestLang(t *testing.T) {
	doc := xmldom.MustParseString(`<root xml:lang="en"><p xml:lang="es-ES"><q/></p><r/></root>`)
	q, _ := First(doc, "//q")
	r, _ := First(doc, "//r")
	expr := MustCompile("lang('es')")
	v, err := expr.Eval(&Context{Node: q})
	if err != nil || !BoolOf(v) {
		t.Errorf("lang('es') on q = %v, %v; want true (inherits es-ES)", v, err)
	}
	v, err = expr.Eval(&Context{Node: r})
	if err != nil || BoolOf(v) {
		t.Errorf("lang('es') on r = %v, %v; want false (nearest is en)", v, err)
	}
	en := MustCompile("lang('en')")
	v, _ = en.Eval(&Context{Node: r})
	if !BoolOf(v) {
		t.Error("lang('en') on r should be true")
	}
}

func TestVariables(t *testing.T) {
	doc := museum(t)
	expr := MustCompile("//painting[@year > $cutoff]")
	v, err := expr.Eval(&Context{Node: doc, Vars: map[string]Value{"cutoff": Number(1910)}})
	if err != nil {
		t.Fatal(err)
	}
	if ns := v.(NodeSet); len(ns) != 3 {
		t.Errorf("with $cutoff=1910: %d nodes, want 3", len(ns))
	}
	if _, err := expr.Eval(&Context{Node: doc}); err == nil {
		t.Error("undefined variable should error")
	}
}

func TestExtensionFunctions(t *testing.T) {
	doc := museum(t)
	expr := MustCompile("repro:double(21)")
	fns := map[string]Function{
		"repro:double": func(_ *Context, args []Value) (Value, error) {
			return Number(2 * NumberOf(args[0])), nil
		},
	}
	v, err := expr.Eval(&Context{Node: doc, Functions: fns})
	if err != nil {
		t.Fatal(err)
	}
	if NumberOf(v) != 42 {
		t.Errorf("repro:double(21) = %v, want 42", NumberOf(v))
	}
	if _, err := expr.Eval(&Context{Node: doc}); err == nil {
		t.Error("unknown function should error without registration")
	}
}

func TestNamespaceNameTests(t *testing.T) {
	doc := xmldom.MustParseString(`<links xmlns:xl="http://www.w3.org/1999/xlink">` +
		`<a xl:href="1"/><b href="2"/></links>`)
	expr := MustCompile("//@xl:href")
	ctx := &Context{Node: doc, Namespaces: map[string]string{"xl": "http://www.w3.org/1999/xlink"}}
	v, err := expr.Eval(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ns := v.(NodeSet); len(ns) != 1 {
		t.Errorf("xl:href attrs = %d, want 1", len(ns))
	}
	// Unbound prefix matches nothing.
	v, err = expr.Eval(&Context{Node: doc})
	if err != nil {
		t.Fatal(err)
	}
	if ns := v.(NodeSet); len(ns) != 0 {
		t.Errorf("unbound prefix matched %d nodes, want 0", len(ns))
	}
	// prefix:* test.
	star := MustCompile("//@xl:*")
	v, err = star.Eval(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ns := v.(NodeSet); len(ns) != 1 {
		t.Errorf("xl:* attrs = %d, want 1", len(ns))
	}
}

func TestFilterExprAndPathCombination(t *testing.T) {
	doc := museum(t)
	tests := []struct {
		expr string
		want int
	}{
		{"id('picasso')/painting", 3},
		{"(//painter)[1]/painting", 3},
		{"(//painting)[2]", 1},
		{"(//painting)[position()<3]", 2},
		{"id('picasso')//title", 3},
	}
	for _, tt := range tests {
		nodes, err := Select(doc, tt.expr)
		if err != nil {
			t.Fatalf("Select(%q): %v", tt.expr, err)
		}
		if len(nodes) != tt.want {
			t.Errorf("Select(%q) = %d, want %d", tt.expr, len(nodes), tt.want)
		}
	}
	// (//painting)[2] uses document order, not per-parent position.
	n, err := First(doc, "(//painting)[2]")
	if err != nil || n == nil {
		t.Fatal(err)
	}
	if id := n.(*xmldom.Element).AttrValue("id"); id != "guernica" {
		t.Errorf("(//painting)[2] = %s, want guernica", id)
	}
}

func TestReverseAxisPosition(t *testing.T) {
	doc := museum(t)
	// preceding-sibling::painting[1] is the nearest preceding sibling.
	n, err := First(doc, "//painting[@id='avignon']/preceding-sibling::painting[1]")
	if err != nil || n == nil {
		t.Fatalf("First: %v %v", n, err)
	}
	if id := n.(*xmldom.Element).AttrValue("id"); id != "guernica" {
		t.Errorf("nearest preceding sibling = %s, want guernica", id)
	}
	// ancestor::*[1] is the parent.
	n, err = First(doc, "//title[.='Guitar']/ancestor::*[1]")
	if err != nil || n == nil {
		t.Fatalf("First: %v %v", n, err)
	}
	if name := n.(*xmldom.Element).Name.Local; name != "painting" {
		t.Errorf("ancestor::*[1] = %s, want painting", name)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"//painting[",
		"//painting]",
		"painting/",
		"1 +",
		"concat(",
		"@",
		"$",
		"'unterminated",
		"painting[@year=]",
		"!-",
		"foo(bar",
		"a b",
		"child::",
		"painting[1]extra",
	}
	for _, src := range bad {
		if _, err := Compile(src); err == nil {
			t.Errorf("Compile(%q) succeeded, want error", src)
		}
	}
}

func TestCompileValid(t *testing.T) {
	good := []string{
		".",
		"..",
		"/",
		"//*",
		"@*",
		"node()",
		"text()",
		"comment()",
		"processing-instruction()",
		"processing-instruction('pi')",
		"a/b/c/d[e/f]",
		"a | b | c",
		"-1",
		"1 div 2 mod 3",
		"self::node()",
		"ancestor-or-self::painting",
		"a[b][c][2]",
		"string(.)",
		"*[last()]",
		"key-less-name",
		"a.b", // names may contain dots
		"a-b", // and hyphens
	}
	for _, src := range good {
		if _, err := Compile(src); err != nil {
			t.Errorf("Compile(%q): %v", src, err)
		}
	}
}

func TestMultiplyDisambiguation(t *testing.T) {
	doc := museum(t)
	got, err := EvalNumber(doc, "2*3")
	if err != nil || got != 6 {
		t.Errorf("2*3 = %v, %v", got, err)
	}
	got, err = EvalNumber(doc, "count(//painting) * 2")
	if err != nil || got != 8 {
		t.Errorf("count*2 = %v, %v", got, err)
	}
	// '*' directly after '/' is a name test, not multiplication.
	nodes, err := Select(doc, "/museum/*")
	if err != nil || len(nodes) != 3 {
		t.Errorf("/museum/* = %d nodes, %v", len(nodes), err)
	}
	// 'div' as element name when no operand precedes.
	divDoc := xmldom.MustParseString(`<root><div>x</div></root>`)
	nodes, err = Select(divDoc, "//div")
	if err != nil || len(nodes) != 1 {
		t.Errorf("//div = %d nodes, %v", len(nodes), err)
	}
}

func TestMatches(t *testing.T) {
	doc := museum(t)
	guitar, _ := First(doc, "//painting[@id='guitar']")
	tests := []struct {
		pattern string
		want    bool
	}{
		{"//painting", true},
		{"//painter/painting", true},
		{"//painting[@year='1913']", true},
		{"//painting[@year='1937']", false},
		{"//movement", false},
		// Relative patterns match at any depth (XSLT semantics).
		{"painting", true},
		{"painter/painting", true},
		{"painting[@year='1913']", true},
		{"title", false},
		{"movement", false},
	}
	for _, tt := range tests {
		ok, err := Matches(MustCompile(tt.pattern), guitar)
		if err != nil {
			t.Fatalf("Matches(%q): %v", tt.pattern, err)
		}
		if ok != tt.want {
			t.Errorf("Matches(%q, guitar) = %v, want %v", tt.pattern, ok, tt.want)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	doc := museum(t)
	expr := MustCompile(".")
	if _, err := expr.Eval(nil); err == nil {
		t.Error("nil context should error")
	}
	if _, err := expr.Eval(&Context{}); err == nil {
		t.Error("nil context node should error")
	}
	// Select on a non-node-set expression errors.
	if _, err := Select(doc, "1+1"); err == nil {
		t.Error("Select of number expression should error")
	}
	// Predicate on a number errors.
	if _, err := Select(doc, "(1)[1]"); err == nil {
		t.Error("predicate on number should error")
	}
	// Union of non-node-sets errors.
	expr = MustCompile("1 | 2")
	if _, err := expr.Eval(&Context{Node: doc}); err == nil {
		t.Error("union of numbers should error")
	}
	// Wrong arity errors at evaluation time.
	for _, src := range []string{"true(1)", "count()", "substring('a')", "not()"} {
		e := MustCompile(src)
		if _, err := e.Eval(&Context{Node: doc}); err == nil {
			t.Errorf("%s should error", src)
		}
	}
}

func TestAttributeAxisExcludesXmlns(t *testing.T) {
	doc := xmldom.MustParseString(`<a xmlns:p="urn:p" p:x="1" y="2"/>`)
	nodes, err := Select(doc, "/a/@*")
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 2 {
		t.Errorf("@* = %d nodes, want 2 (xmlns declarations excluded)", len(nodes))
	}
}

func TestValueKinds(t *testing.T) {
	kinds := []struct {
		v    Value
		want Kind
	}{
		{NodeSet{}, NodeSetKind},
		{Boolean(true), BooleanKind},
		{Number(1), NumberKind},
		{String("x"), StringKind},
	}
	for _, tt := range kinds {
		if tt.v.Kind() != tt.want {
			t.Errorf("%T.Kind() = %v, want %v", tt.v, tt.v.Kind(), tt.want)
		}
	}
	names := map[Kind]string{NodeSetKind: "node-set", BooleanKind: "boolean", NumberKind: "number", StringKind: "string", Kind(0): "unknown"}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q", k, k.String())
		}
	}
}

func TestExprAccessors(t *testing.T) {
	e := MustCompile("//a")
	if e.Source() != "//a" || e.String() != "//a" {
		t.Errorf("Source/String = %q/%q", e.Source(), e.String())
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustCompile of invalid expression should panic")
		}
	}()
	MustCompile("][")
}
