package xpath

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// tokenKind classifies lexical tokens.
type tokenKind int

const (
	tokEOF        tokenKind = iota
	tokName                 // NCName or QName prefix part (prefix handled by parser via tokColon)
	tokNumber               // numeric literal
	tokLiteral              // quoted string literal
	tokSlash                // /
	tokSlashSlash           // //
	tokLBracket             // [
	tokRBracket             // ]
	tokLParen               // (
	tokRParen               // )
	tokAt                   // @
	tokComma                // ,
	tokColonColon           // ::
	tokColon                // : (inside QName)
	tokDot                  // .
	tokDotDot               // ..
	tokStar                 // * (name test)
	tokPipe                 // |
	tokPlus                 // +
	tokMinus                // -
	tokEq                   // =
	tokNeq                  // !=
	tokLt                   // <
	tokLte                  // <=
	tokGt                   // >
	tokGte                  // >=
	tokDollar               // $
	tokAnd                  // and
	tokOr                   // or
	tokDiv                  // div
	tokMod                  // mod
	tokMultiply             // * as operator
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of expression"
	}
	return fmt.Sprintf("%q", t.text)
}

// lexer tokenizes an XPath expression, applying the §3.7 disambiguation
// rules for '*' and the operator names (and, or, div, mod) based on the
// preceding token.
type lexer struct {
	src  string
	pos  int
	prev tokenKind
	has  bool // whether prev is set
}

func newLexer(src string) *lexer { return &lexer{src: src} }

// operandEnd reports whether the previous token can end an operand; per the
// spec, a following '*' is then the multiply operator and a following NCName
// is an operator name.
func (l *lexer) operandEnd() bool {
	if !l.has {
		return false
	}
	switch l.prev {
	case tokName, tokNumber, tokLiteral, tokRParen, tokRBracket, tokDot, tokDotDot, tokStar:
		return true
	default:
		return false
	}
}

func (l *lexer) emit(k tokenKind, text string, pos int) token {
	l.prev, l.has = k, true
	return token{kind: k, text: text, pos: pos}
}

func (l *lexer) errorf(pos int, format string, args ...any) error {
	return fmt.Errorf("xpath: %s at offset %d in %q", fmt.Sprintf(format, args...), pos, l.src)
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && isSpace(l.src[l.pos]) {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return l.emit(tokEOF, "", l.pos), nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch c {
	case '/':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '/' {
			l.pos += 2
			return l.emit(tokSlashSlash, "//", start), nil
		}
		l.pos++
		return l.emit(tokSlash, "/", start), nil
	case '[':
		l.pos++
		return l.emit(tokLBracket, "[", start), nil
	case ']':
		l.pos++
		return l.emit(tokRBracket, "]", start), nil
	case '(':
		l.pos++
		return l.emit(tokLParen, "(", start), nil
	case ')':
		l.pos++
		return l.emit(tokRParen, ")", start), nil
	case '@':
		l.pos++
		return l.emit(tokAt, "@", start), nil
	case ',':
		l.pos++
		return l.emit(tokComma, ",", start), nil
	case '|':
		l.pos++
		return l.emit(tokPipe, "|", start), nil
	case '+':
		l.pos++
		return l.emit(tokPlus, "+", start), nil
	case '-':
		l.pos++
		return l.emit(tokMinus, "-", start), nil
	case '$':
		l.pos++
		return l.emit(tokDollar, "$", start), nil
	case '=':
		l.pos++
		return l.emit(tokEq, "=", start), nil
	case '!':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
			l.pos += 2
			return l.emit(tokNeq, "!=", start), nil
		}
		return token{}, l.errorf(start, "unexpected '!'")
	case '<':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
			l.pos += 2
			return l.emit(tokLte, "<=", start), nil
		}
		l.pos++
		return l.emit(tokLt, "<", start), nil
	case '>':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
			l.pos += 2
			return l.emit(tokGte, ">=", start), nil
		}
		l.pos++
		return l.emit(tokGt, ">", start), nil
	case ':':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == ':' {
			l.pos += 2
			return l.emit(tokColonColon, "::", start), nil
		}
		l.pos++
		return l.emit(tokColon, ":", start), nil
	case '*':
		l.pos++
		if l.operandEnd() {
			return l.emit(tokMultiply, "*", start), nil
		}
		return l.emit(tokStar, "*", start), nil
	case '.':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '.' {
			l.pos += 2
			return l.emit(tokDotDot, "..", start), nil
		}
		if l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]) {
			return l.lexNumber()
		}
		l.pos++
		return l.emit(tokDot, ".", start), nil
	case '"', '\'':
		quote := c
		end := strings.IndexByte(l.src[l.pos+1:], quote)
		if end < 0 {
			return token{}, l.errorf(start, "unterminated string literal")
		}
		lit := l.src[l.pos+1 : l.pos+1+end]
		l.pos += end + 2
		return l.emit(tokLiteral, lit, start), nil
	}
	if isDigit(c) {
		return l.lexNumber()
	}
	if isNameStart(rune(c)) || c >= 0x80 {
		return l.lexName()
	}
	return token{}, l.errorf(start, "unexpected character %q", c)
}

func (l *lexer) lexNumber() (token, error) {
	start := l.pos
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '.' {
			if seenDot {
				break
			}
			seenDot = true
			l.pos++
			continue
		}
		if !isDigit(c) {
			break
		}
		l.pos++
	}
	return l.emit(tokNumber, l.src[start:l.pos], start), nil
}

func (l *lexer) lexName() (token, error) {
	start := l.pos
	for l.pos < len(l.src) {
		r, size := decodeRune(l.src[l.pos:])
		if !isNameChar(r) {
			break
		}
		l.pos += size
	}
	name := l.src[start:l.pos]
	if l.operandEnd() {
		switch name {
		case "and":
			return l.emit(tokAnd, name, start), nil
		case "or":
			return l.emit(tokOr, name, start), nil
		case "div":
			return l.emit(tokDiv, name, start), nil
		case "mod":
			return l.emit(tokMod, name, start), nil
		}
	}
	return l.emit(tokName, name, start), nil
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }
func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isNameStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isNameChar(r rune) bool {
	return r == '_' || r == '-' || r == '.' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func decodeRune(s string) (rune, int) {
	return utf8.DecodeRuneInString(s)
}
