package xpath

import (
	"fmt"
	"strconv"
)

// axis enumerates the supported XPath axes.
type axis int

const (
	axisChild axis = iota
	axisDescendant
	axisDescendantOrSelf
	axisParent
	axisAncestor
	axisAncestorOrSelf
	axisFollowingSibling
	axisPrecedingSibling
	axisFollowing
	axisPreceding
	axisAttribute
	axisSelf
)

var axisNames = map[string]axis{
	"child":              axisChild,
	"descendant":         axisDescendant,
	"descendant-or-self": axisDescendantOrSelf,
	"parent":             axisParent,
	"ancestor":           axisAncestor,
	"ancestor-or-self":   axisAncestorOrSelf,
	"following-sibling":  axisFollowingSibling,
	"preceding-sibling":  axisPrecedingSibling,
	"following":          axisFollowing,
	"preceding":          axisPreceding,
	"attribute":          axisAttribute,
	"self":               axisSelf,
}

func (a axis) String() string {
	for name, ax := range axisNames {
		if ax == a {
			return name
		}
	}
	return "unknown-axis"
}

// nodeTest is a step's node test.
type nodeTest struct {
	// kind: "name" (QName or *), "node", "text", "comment", "pi"
	kind   string
	prefix string // for name tests; "" means no prefix
	local  string // local name or "*"
	target string // for processing-instruction('target')
}

// step is one location step.
type step struct {
	axis  axis
	test  nodeTest
	preds []exprNode
}

// AST node variants.
type (
	exprNode interface {
		eval(ctx *evalCtx) (Value, error)
	}

	numberLit struct{ v float64 }
	stringLit struct{ v string }
	varRef    struct{ name string }
	funcCall  struct {
		name string
		args []exprNode
	}
	binaryExpr struct {
		op  string // "or" "and" "=" "!=" "<" "<=" ">" ">=" "+" "-" "*" "div" "mod" "|"
		lhs exprNode
		rhs exprNode
	}
	negExpr  struct{ operand exprNode }
	pathExpr struct {
		// filter is the starting expression for paths like id('x')/a;
		// nil for plain location paths.
		filter   exprNode
		absolute bool
		steps    []*step
	}
	filterExpr struct {
		primary exprNode
		preds   []exprNode
	}
)

// parser is a recursive-descent parser over the token stream.
type parser struct {
	lex *lexer
	tok token
	src string
}

func parse(src string) (exprNode, error) {
	p := &parser{lex: newLexer(src), src: src}
	if err := p.advance(); err != nil {
		return nil, err
	}
	e, err := p.parseOrExpr()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.errorf("unexpected %s after expression", p.tok)
	}
	return e, nil
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("xpath: %s at offset %d in %q", fmt.Sprintf(format, args...), p.tok.pos, p.src)
}

func (p *parser) expect(k tokenKind, what string) error {
	if p.tok.kind != k {
		return p.errorf("expected %s, found %s", what, p.tok)
	}
	return p.advance()
}

func (p *parser) parseOrExpr() (exprNode, error) {
	lhs, err := p.parseAndExpr()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokOr {
		if err := p.advance(); err != nil {
			return nil, err
		}
		rhs, err := p.parseAndExpr()
		if err != nil {
			return nil, err
		}
		lhs = &binaryExpr{op: "or", lhs: lhs, rhs: rhs}
	}
	return lhs, nil
}

func (p *parser) parseAndExpr() (exprNode, error) {
	lhs, err := p.parseEqualityExpr()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokAnd {
		if err := p.advance(); err != nil {
			return nil, err
		}
		rhs, err := p.parseEqualityExpr()
		if err != nil {
			return nil, err
		}
		lhs = &binaryExpr{op: "and", lhs: lhs, rhs: rhs}
	}
	return lhs, nil
}

func (p *parser) parseEqualityExpr() (exprNode, error) {
	lhs, err := p.parseRelationalExpr()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokEq || p.tok.kind == tokNeq {
		op := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		rhs, err := p.parseRelationalExpr()
		if err != nil {
			return nil, err
		}
		lhs = &binaryExpr{op: op, lhs: lhs, rhs: rhs}
	}
	return lhs, nil
}

func (p *parser) parseRelationalExpr() (exprNode, error) {
	lhs, err := p.parseAdditiveExpr()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokLt || p.tok.kind == tokLte || p.tok.kind == tokGt || p.tok.kind == tokGte {
		op := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		rhs, err := p.parseAdditiveExpr()
		if err != nil {
			return nil, err
		}
		lhs = &binaryExpr{op: op, lhs: lhs, rhs: rhs}
	}
	return lhs, nil
}

func (p *parser) parseAdditiveExpr() (exprNode, error) {
	lhs, err := p.parseMultiplicativeExpr()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokPlus || p.tok.kind == tokMinus {
		op := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		rhs, err := p.parseMultiplicativeExpr()
		if err != nil {
			return nil, err
		}
		lhs = &binaryExpr{op: op, lhs: lhs, rhs: rhs}
	}
	return lhs, nil
}

func (p *parser) parseMultiplicativeExpr() (exprNode, error) {
	lhs, err := p.parseUnaryExpr()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokMultiply || p.tok.kind == tokDiv || p.tok.kind == tokMod {
		op := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		rhs, err := p.parseUnaryExpr()
		if err != nil {
			return nil, err
		}
		lhs = &binaryExpr{op: op, lhs: lhs, rhs: rhs}
	}
	return lhs, nil
}

func (p *parser) parseUnaryExpr() (exprNode, error) {
	neg := false
	for p.tok.kind == tokMinus {
		neg = !neg
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	e, err := p.parseUnionExpr()
	if err != nil {
		return nil, err
	}
	if neg {
		return &negExpr{operand: e}, nil
	}
	return e, nil
}

func (p *parser) parseUnionExpr() (exprNode, error) {
	lhs, err := p.parsePathExpr()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokPipe {
		if err := p.advance(); err != nil {
			return nil, err
		}
		rhs, err := p.parsePathExpr()
		if err != nil {
			return nil, err
		}
		lhs = &binaryExpr{op: "|", lhs: lhs, rhs: rhs}
	}
	return lhs, nil
}

// startsFilterExpr reports whether the current token begins a FilterExpr
// (primary expression) rather than a location path.
func (p *parser) startsFilterExpr() bool {
	switch p.tok.kind {
	case tokDollar, tokLiteral, tokNumber, tokLParen:
		return true
	case tokName:
		// A function call — unless it is a node-type test, in which case
		// it begins a location path step.
		if isNodeTypeName(p.tok.text) {
			return false
		}
		return p.peekFunctionCall()
	default:
		return false
	}
}

// peekFunctionCall reports whether the upcoming tokens complete a function
// call: "(" directly, or ":" name "(" for a prefixed extension function.
func (p *parser) peekFunctionCall() bool {
	save := *p.lex
	defer func() { *p.lex = save }()
	t, err := p.lex.next()
	if err != nil {
		return false
	}
	if t.kind == tokLParen {
		return true
	}
	if t.kind != tokColon {
		return false
	}
	if t, err = p.lex.next(); err != nil || t.kind != tokName {
		return false
	}
	t, err = p.lex.next()
	return err == nil && t.kind == tokLParen
}

func isNodeTypeName(s string) bool {
	switch s {
	case "node", "text", "comment", "processing-instruction":
		return true
	}
	return false
}

func (p *parser) parsePathExpr() (exprNode, error) {
	if p.startsFilterExpr() {
		fe, err := p.parseFilterExpr()
		if err != nil {
			return nil, err
		}
		if p.tok.kind == tokSlash || p.tok.kind == tokSlashSlash {
			pe := &pathExpr{filter: fe}
			if p.tok.kind == tokSlashSlash {
				pe.steps = append(pe.steps, descendantOrSelfStep())
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.parseRelativePath(pe); err != nil {
				return nil, err
			}
			return pe, nil
		}
		return fe, nil
	}
	return p.parseLocationPath()
}

func (p *parser) parseFilterExpr() (exprNode, error) {
	prim, err := p.parsePrimaryExpr()
	if err != nil {
		return nil, err
	}
	var preds []exprNode
	for p.tok.kind == tokLBracket {
		pred, err := p.parsePredicate()
		if err != nil {
			return nil, err
		}
		preds = append(preds, pred)
	}
	if len(preds) == 0 {
		return prim, nil
	}
	return &filterExpr{primary: prim, preds: preds}, nil
}

func (p *parser) parsePrimaryExpr() (exprNode, error) {
	switch p.tok.kind {
	case tokDollar:
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokName {
			return nil, p.errorf("expected variable name after '$'")
		}
		name := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &varRef{name: name}, nil
	case tokLiteral:
		v := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &stringLit{v: v}, nil
	case tokNumber:
		f, err := strconv.ParseFloat(p.tok.text, 64)
		if err != nil {
			return nil, p.errorf("bad number %q", p.tok.text)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &numberLit{v: f}, nil
	case tokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseOrExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return e, nil
	case tokName:
		return p.parseFunctionCall()
	default:
		return nil, p.errorf("unexpected %s", p.tok)
	}
}

func (p *parser) parseFunctionCall() (exprNode, error) {
	name := p.tok.text
	if err := p.advance(); err != nil {
		return nil, err
	}
	if p.tok.kind == tokColon {
		// Prefixed function name (extension); keep prefix:local form.
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokName {
			return nil, p.errorf("expected local name after prefix %q", name)
		}
		name = name + ":" + p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if err := p.expect(tokLParen, "'(' in function call"); err != nil {
		return nil, err
	}
	var args []exprNode
	if p.tok.kind != tokRParen {
		for {
			arg, err := p.parseOrExpr()
			if err != nil {
				return nil, err
			}
			args = append(args, arg)
			if p.tok.kind != tokComma {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	if err := p.expect(tokRParen, "')' in function call"); err != nil {
		return nil, err
	}
	return &funcCall{name: name, args: args}, nil
}

func descendantOrSelfStep() *step {
	return &step{axis: axisDescendantOrSelf, test: nodeTest{kind: "node"}}
}

func (p *parser) parseLocationPath() (exprNode, error) {
	pe := &pathExpr{}
	switch p.tok.kind {
	case tokSlash:
		pe.absolute = true
		if err := p.advance(); err != nil {
			return nil, err
		}
		if !p.startsStep() {
			return pe, nil // bare "/" selects the root
		}
	case tokSlashSlash:
		pe.absolute = true
		pe.steps = append(pe.steps, descendantOrSelfStep())
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if err := p.parseRelativePath(pe); err != nil {
		return nil, err
	}
	return pe, nil
}

func (p *parser) startsStep() bool {
	switch p.tok.kind {
	case tokName, tokStar, tokAt, tokDot, tokDotDot:
		return true
	default:
		return false
	}
}

func (p *parser) parseRelativePath(pe *pathExpr) error {
	for {
		st, err := p.parseStep()
		if err != nil {
			return err
		}
		pe.steps = append(pe.steps, st)
		switch p.tok.kind {
		case tokSlash:
			if err := p.advance(); err != nil {
				return err
			}
		case tokSlashSlash:
			pe.steps = append(pe.steps, descendantOrSelfStep())
			if err := p.advance(); err != nil {
				return err
			}
		default:
			return nil
		}
	}
}

func (p *parser) parseStep() (*step, error) {
	switch p.tok.kind {
	case tokDot:
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &step{axis: axisSelf, test: nodeTest{kind: "node"}}, nil
	case tokDotDot:
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &step{axis: axisParent, test: nodeTest{kind: "node"}}, nil
	}

	st := &step{axis: axisChild}
	if p.tok.kind == tokAt {
		st.axis = axisAttribute
		if err := p.advance(); err != nil {
			return nil, err
		}
	} else if p.tok.kind == tokName {
		// Possible explicit axis.
		if ax, ok := axisNames[p.tok.text]; ok && p.peekIsColonColon() {
			st.axis = ax
			if err := p.advance(); err != nil { // axis name
				return nil, err
			}
			if err := p.advance(); err != nil { // '::'
				return nil, err
			}
		}
	}

	test, err := p.parseNodeTest()
	if err != nil {
		return nil, err
	}
	st.test = test

	for p.tok.kind == tokLBracket {
		pred, err := p.parsePredicate()
		if err != nil {
			return nil, err
		}
		st.preds = append(st.preds, pred)
	}
	return st, nil
}

func (p *parser) peekIsColonColon() bool {
	save := *p.lex
	t, err := p.lex.next()
	*p.lex = save
	return err == nil && t.kind == tokColonColon
}

func (p *parser) parseNodeTest() (nodeTest, error) {
	switch p.tok.kind {
	case tokStar:
		if err := p.advance(); err != nil {
			return nodeTest{}, err
		}
		return nodeTest{kind: "name", local: "*"}, nil
	case tokName:
		name := p.tok.text
		if err := p.advance(); err != nil {
			return nodeTest{}, err
		}
		// Node-type tests.
		if p.tok.kind == tokLParen && isNodeTypeName(name) {
			if err := p.advance(); err != nil {
				return nodeTest{}, err
			}
			nt := nodeTest{}
			switch name {
			case "node":
				nt.kind = "node"
			case "text":
				nt.kind = "text"
			case "comment":
				nt.kind = "comment"
			case "processing-instruction":
				nt.kind = "pi"
				if p.tok.kind == tokLiteral {
					nt.target = p.tok.text
					if err := p.advance(); err != nil {
						return nodeTest{}, err
					}
				}
			}
			if err := p.expect(tokRParen, "')' in node test"); err != nil {
				return nodeTest{}, err
			}
			return nt, nil
		}
		// QName or prefix:*.
		if p.tok.kind == tokColon {
			if err := p.advance(); err != nil {
				return nodeTest{}, err
			}
			switch p.tok.kind {
			case tokName:
				local := p.tok.text
				if err := p.advance(); err != nil {
					return nodeTest{}, err
				}
				return nodeTest{kind: "name", prefix: name, local: local}, nil
			case tokStar:
				if err := p.advance(); err != nil {
					return nodeTest{}, err
				}
				return nodeTest{kind: "name", prefix: name, local: "*"}, nil
			default:
				return nodeTest{}, p.errorf("expected local name after %q:", name)
			}
		}
		return nodeTest{kind: "name", local: name}, nil
	default:
		return nodeTest{}, p.errorf("expected node test, found %s", p.tok)
	}
}

func (p *parser) parsePredicate() (exprNode, error) {
	if err := p.expect(tokLBracket, "'['"); err != nil {
		return nil, err
	}
	e, err := p.parseOrExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tokRBracket, "']'"); err != nil {
		return nil, err
	}
	return e, nil
}
