package xpath

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/xmldom"
)

// Function is an extension function callable from expressions. Functions
// are registered in a Context keyed by name (optionally "prefix:local").
type Function func(ctx *Context, args []Value) (Value, error)

// Context supplies the evaluation environment for an expression.
type Context struct {
	// Node is the context node; required.
	Node xmldom.Node
	// Position and Size are the context position and size; they default
	// to 1 when zero.
	Position int
	Size     int
	// Vars binds variable names ($name) to values.
	Vars map[string]Value
	// Namespaces binds prefixes used in qualified name tests to URIs.
	Namespaces map[string]string
	// Functions supplies extension functions consulted after the core
	// library.
	Functions map[string]Function
}

// evalCtx is the internal, per-node evaluation state.
type evalCtx struct {
	node xmldom.Node
	pos  int
	size int
	env  *Context
}

func (c *evalCtx) with(n xmldom.Node, pos, size int) *evalCtx {
	return &evalCtx{node: n, pos: pos, size: size, env: c.env}
}

// Expr is a compiled XPath expression, safe for concurrent use.
type Expr struct {
	src  string
	root exprNode
}

// Source returns the original expression text.
func (e *Expr) Source() string { return e.src }

// String implements fmt.Stringer.
func (e *Expr) String() string { return e.src }

// Compile parses an expression into a reusable Expr.
func Compile(src string) (*Expr, error) {
	root, err := parse(src)
	if err != nil {
		return nil, err
	}
	return &Expr{src: src, root: root}, nil
}

// MustCompile is Compile that panics on error, for statically known
// expressions.
func MustCompile(src string) *Expr {
	e, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return e
}

// compiled caches compiled expressions for the package-level helpers.
var compiled sync.Map // string -> *Expr

func cachedCompile(src string) (*Expr, error) {
	if v, ok := compiled.Load(src); ok {
		return v.(*Expr), nil
	}
	e, err := Compile(src)
	if err != nil {
		return nil, err
	}
	compiled.Store(src, e)
	return e, nil
}

// Eval evaluates the expression in the given context.
func (e *Expr) Eval(ctx *Context) (Value, error) {
	if ctx == nil || ctx.Node == nil {
		return nil, fmt.Errorf("xpath: evaluate %q: nil context node", e.src)
	}
	pos, size := ctx.Position, ctx.Size
	if pos == 0 {
		pos = 1
	}
	if size == 0 {
		size = 1
	}
	ec := &evalCtx{node: ctx.Node, pos: pos, size: size, env: ctx}
	return e.root.eval(ec)
}

// Select evaluates the expression and returns the resulting node-set in
// document order; it errors when the result is not a node-set.
func (e *Expr) Select(n xmldom.Node) ([]xmldom.Node, error) {
	v, err := e.Eval(&Context{Node: n})
	if err != nil {
		return nil, err
	}
	ns, ok := v.(NodeSet)
	if !ok {
		return nil, fmt.Errorf("xpath: %q evaluates to %s, not node-set", e.src, v.Kind())
	}
	return []xmldom.Node(sortDocOrder(ns)), nil
}

// Select compiles (with caching) and evaluates src against n, returning
// the node-set in document order.
func Select(n xmldom.Node, src string) ([]xmldom.Node, error) {
	e, err := cachedCompile(src)
	if err != nil {
		return nil, err
	}
	return e.Select(n)
}

// SelectElements is Select filtered to element nodes.
func SelectElements(n xmldom.Node, src string) ([]*xmldom.Element, error) {
	nodes, err := Select(n, src)
	if err != nil {
		return nil, err
	}
	var out []*xmldom.Element
	for _, nd := range nodes {
		if el, ok := nd.(*xmldom.Element); ok {
			out = append(out, el)
		}
	}
	return out, nil
}

// First returns the first node selected by src, or nil when empty.
func First(n xmldom.Node, src string) (xmldom.Node, error) {
	nodes, err := Select(n, src)
	if err != nil {
		return nil, err
	}
	if len(nodes) == 0 {
		return nil, nil
	}
	return nodes[0], nil
}

// EvalString compiles (cached) and evaluates src, converting to string.
func EvalString(n xmldom.Node, src string) (string, error) {
	e, err := cachedCompile(src)
	if err != nil {
		return "", err
	}
	v, err := e.Eval(&Context{Node: n})
	if err != nil {
		return "", err
	}
	return StringOf(v), nil
}

// EvalNumber compiles (cached) and evaluates src, converting to number.
func EvalNumber(n xmldom.Node, src string) (float64, error) {
	e, err := cachedCompile(src)
	if err != nil {
		return math.NaN(), err
	}
	v, err := e.Eval(&Context{Node: n})
	if err != nil {
		return math.NaN(), err
	}
	return NumberOf(v), nil
}

// EvalBool compiles (cached) and evaluates src, converting to boolean.
func EvalBool(n xmldom.Node, src string) (bool, error) {
	e, err := cachedCompile(src)
	if err != nil {
		return false, err
	}
	v, err := e.Eval(&Context{Node: n})
	if err != nil {
		return false, err
	}
	return BoolOf(v), nil
}

// Matches reports whether node is selected by the pattern expression,
// with XSLT-style pattern semantics: a relative pattern such as "title" or
// "painter/painting" matches a node when the node is selected by the
// expression evaluated from some ancestor (or the document root), so
// nesting depth does not matter. Absolute patterns evaluate from the root
// as usual. The presentation engine's template rules use this.
func Matches(pattern *Expr, node xmldom.Node) (bool, error) {
	// Candidate context nodes: every ancestor-or-self, ending at the
	// document (or the top of a detached tree).
	for ctx := node; ctx != nil; ctx = ctx.ParentNode() {
		v, err := pattern.Eval(&Context{Node: ctx})
		if err != nil {
			return false, err
		}
		ns, ok := v.(NodeSet)
		if !ok {
			return false, fmt.Errorf("xpath: pattern %q is not a node-set expression", pattern.src)
		}
		for _, n := range ns {
			if n == node {
				return true, nil
			}
		}
	}
	return false, nil
}

func topOf(n xmldom.Node) xmldom.Node {
	cur := n
	for {
		p := cur.ParentNode()
		if p == nil {
			return cur
		}
		cur = p
	}
}

// ---- expression node evaluation ----

func (n *numberLit) eval(*evalCtx) (Value, error) { return Number(n.v), nil }
func (n *stringLit) eval(*evalCtx) (Value, error) { return String(n.v), nil }

func (n *varRef) eval(ctx *evalCtx) (Value, error) {
	if ctx.env.Vars != nil {
		if v, ok := ctx.env.Vars[n.name]; ok {
			return v, nil
		}
	}
	return nil, fmt.Errorf("xpath: undefined variable $%s", n.name)
}

func (n *negExpr) eval(ctx *evalCtx) (Value, error) {
	v, err := n.operand.eval(ctx)
	if err != nil {
		return nil, err
	}
	return Number(-NumberOf(v)), nil
}

func (n *binaryExpr) eval(ctx *evalCtx) (Value, error) {
	// Short-circuit boolean operators.
	switch n.op {
	case "or", "and":
		lv, err := n.lhs.eval(ctx)
		if err != nil {
			return nil, err
		}
		lb := BoolOf(lv)
		if n.op == "or" && lb {
			return Boolean(true), nil
		}
		if n.op == "and" && !lb {
			return Boolean(false), nil
		}
		rv, err := n.rhs.eval(ctx)
		if err != nil {
			return nil, err
		}
		return Boolean(BoolOf(rv)), nil
	}

	lv, err := n.lhs.eval(ctx)
	if err != nil {
		return nil, err
	}
	rv, err := n.rhs.eval(ctx)
	if err != nil {
		return nil, err
	}
	switch n.op {
	case "|":
		ls, ok1 := lv.(NodeSet)
		rs, ok2 := rv.(NodeSet)
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("xpath: '|' requires node-set operands")
		}
		return sortDocOrder(append(append(NodeSet{}, ls...), rs...)), nil
	case "=":
		return Boolean(compareValues(opEq, lv, rv)), nil
	case "!=":
		return Boolean(compareValues(opNeq, lv, rv)), nil
	case "<":
		return Boolean(compareValues(opLt, lv, rv)), nil
	case "<=":
		return Boolean(compareValues(opLte, lv, rv)), nil
	case ">":
		return Boolean(compareValues(opGt, lv, rv)), nil
	case ">=":
		return Boolean(compareValues(opGte, lv, rv)), nil
	case "+":
		return Number(NumberOf(lv) + NumberOf(rv)), nil
	case "-":
		return Number(NumberOf(lv) - NumberOf(rv)), nil
	case "*":
		return Number(NumberOf(lv) * NumberOf(rv)), nil
	case "div":
		return Number(NumberOf(lv) / NumberOf(rv)), nil
	case "mod":
		return Number(math.Mod(NumberOf(lv), NumberOf(rv))), nil
	default:
		return nil, fmt.Errorf("xpath: unknown operator %q", n.op)
	}
}

func (n *filterExpr) eval(ctx *evalCtx) (Value, error) {
	v, err := n.primary.eval(ctx)
	if err != nil {
		return nil, err
	}
	ns, ok := v.(NodeSet)
	if !ok {
		return nil, fmt.Errorf("xpath: predicate applied to %s, not node-set", v.Kind())
	}
	ns = sortDocOrder(ns)
	for _, pred := range n.preds {
		ns, err = applyPredicate(ctx, ns, pred)
		if err != nil {
			return nil, err
		}
	}
	return ns, nil
}

func (n *pathExpr) eval(ctx *evalCtx) (Value, error) {
	var current NodeSet
	switch {
	case n.filter != nil:
		v, err := n.filter.eval(ctx)
		if err != nil {
			return nil, err
		}
		ns, ok := v.(NodeSet)
		if !ok {
			return nil, fmt.Errorf("xpath: path applied to %s, not node-set", v.Kind())
		}
		current = sortDocOrder(ns)
	case n.absolute:
		doc := ctx.node.Document()
		if doc != nil {
			current = NodeSet{doc}
		} else {
			current = NodeSet{topOf(ctx.node)}
		}
	default:
		current = NodeSet{ctx.node}
	}

	for _, st := range n.steps {
		var next NodeSet
		for _, cn := range current {
			nodes, err := evalStep(ctx, cn, st)
			if err != nil {
				return nil, err
			}
			next = append(next, nodes...)
		}
		current = sortDocOrder(next)
	}
	return current, nil
}

// evalStep applies one step to a single context node.
func evalStep(ctx *evalCtx, n xmldom.Node, st *step) (NodeSet, error) {
	candidates := axisNodes(n, st.axis)
	var matched NodeSet
	for _, c := range candidates {
		if nodeTestMatches(ctx, c, st) {
			matched = append(matched, c)
		}
	}
	var err error
	for _, pred := range st.preds {
		matched, err = applyPredicate(ctx, matched, pred)
		if err != nil {
			return nil, err
		}
	}
	return matched, nil
}

// applyPredicate filters nodes by the predicate expression. Callers supply
// nodes in axis order (reverse axes list nearest-first), so the proximity
// position is simply the list index plus one.
func applyPredicate(ctx *evalCtx, nodes NodeSet, pred exprNode) (NodeSet, error) {
	size := len(nodes)
	var out NodeSet
	for i, n := range nodes {
		pos := i + 1
		sub := ctx.with(n, pos, size)
		v, err := pred.eval(sub)
		if err != nil {
			return nil, err
		}
		keep := false
		if num, ok := v.(Number); ok {
			keep = float64(num) == float64(pos)
		} else {
			keep = BoolOf(v)
		}
		if keep {
			out = append(out, n)
		}
	}
	return out, nil
}

// nodeTestMatches applies the step's node test.
func nodeTestMatches(ctx *evalCtx, n xmldom.Node, st *step) bool {
	switch st.test.kind {
	case "node":
		return true
	case "text":
		return n.Type() == xmldom.TextNode
	case "comment":
		return n.Type() == xmldom.CommentNode
	case "pi":
		pi, ok := n.(*xmldom.ProcInst)
		if !ok {
			return false
		}
		return st.test.target == "" || pi.Target == st.test.target
	case "name":
		var name xmldom.Name
		switch v := n.(type) {
		case *xmldom.Element:
			if st.axis == axisAttribute {
				return false
			}
			name = v.Name
		case *xmldom.Attr:
			name = v.Name
		default:
			return false
		}
		// Resolve the test's namespace.
		var wantSpace string
		if st.test.prefix != "" {
			if ctx.env.Namespaces != nil {
				wantSpace = ctx.env.Namespaces[st.test.prefix]
			}
			if wantSpace == "" {
				return false // unbound prefix matches nothing
			}
		}
		if st.test.local == "*" {
			if st.test.prefix == "" {
				return true
			}
			return name.Space == wantSpace
		}
		if name.Local != st.test.local {
			return false
		}
		return name.Space == wantSpace
	default:
		return false
	}
}

// axisNodes returns the nodes on the given axis from n, in axis order.
func axisNodes(n xmldom.Node, ax axis) []xmldom.Node {
	switch ax {
	case axisSelf:
		return []xmldom.Node{n}
	case axisChild:
		return childNodes(n)
	case axisDescendant:
		var out []xmldom.Node
		collectDescendants(n, &out)
		return out
	case axisDescendantOrSelf:
		out := []xmldom.Node{n}
		collectDescendants(n, &out)
		return out
	case axisParent:
		if p := parentOf(n); p != nil {
			return []xmldom.Node{p}
		}
		return nil
	case axisAncestor:
		var out []xmldom.Node
		for p := parentOf(n); p != nil; p = parentOf(p) {
			out = append(out, p)
		}
		return out
	case axisAncestorOrSelf:
		out := []xmldom.Node{n}
		for p := parentOf(n); p != nil; p = parentOf(p) {
			out = append(out, p)
		}
		return out
	case axisAttribute:
		el, ok := n.(*xmldom.Element)
		if !ok {
			return nil
		}
		attrs := el.Attrs()
		out := make([]xmldom.Node, 0, len(attrs))
		for _, a := range attrs {
			// xmlns declarations are namespace machinery, not
			// attributes, per the XPath data model.
			if a.Name.Space == "xmlns" || (a.Name.Space == "" && a.Name.Local == "xmlns") {
				continue
			}
			out = append(out, a)
		}
		return out
	case axisFollowingSibling:
		return siblings(n, +1)
	case axisPrecedingSibling:
		return siblings(n, -1)
	case axisFollowing:
		var out []xmldom.Node
		cur := n
		for cur != nil {
			for _, s := range siblings(cur, +1) {
				out = append(out, s)
				collectDescendants(s, &out)
			}
			cur = parentOf(cur)
		}
		return out
	case axisPreceding:
		// Preceding: nodes before n in document order, excluding
		// ancestors; reverse document order.
		var out []xmldom.Node
		cur := n
		for cur != nil {
			pre := siblings(cur, -1)
			for _, s := range pre {
				var sub []xmldom.Node
				collectDescendants(s, &sub)
				for i := len(sub) - 1; i >= 0; i-- {
					out = append(out, sub[i])
				}
				out = append(out, s)
			}
			cur = parentOf(cur)
		}
		return out
	default:
		return nil
	}
}

func childNodes(n xmldom.Node) []xmldom.Node {
	switch v := n.(type) {
	case *xmldom.Element:
		return v.Children()
	case *xmldom.Document:
		return v.Children()
	default:
		return nil
	}
}

func collectDescendants(n xmldom.Node, out *[]xmldom.Node) {
	for _, c := range childNodes(n) {
		*out = append(*out, c)
		collectDescendants(c, out)
	}
}

func parentOf(n xmldom.Node) xmldom.Node {
	p := n.ParentNode()
	if p == nil {
		return nil
	}
	return p
}

// siblings returns n's siblings in the given direction (+1 following,
// -1 preceding in reverse order). Attribute nodes have no siblings.
func siblings(n xmldom.Node, dir int) []xmldom.Node {
	if n.Type() == xmldom.AttributeNode {
		return nil
	}
	parent := parentOf(n)
	if parent == nil {
		return nil
	}
	kids := childNodes(parent)
	idx := -1
	for i, c := range kids {
		if c == n {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil
	}
	var out []xmldom.Node
	if dir > 0 {
		for _, c := range kids[idx+1:] {
			out = append(out, c)
		}
	} else {
		for i := idx - 1; i >= 0; i-- {
			out = append(out, kids[i])
		}
	}
	return out
}
