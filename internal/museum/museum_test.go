package museum

import (
	"math/rand"
	"testing"

	"repro/internal/navigation"
)

func TestPaperStore(t *testing.T) {
	st := PaperStore()
	if st.Len() != 8 {
		t.Errorf("instances = %d, want 8", st.Len())
	}
	if got := len(st.InstancesOf("Painting")); got != 4 {
		t.Errorf("paintings = %d, want 4", got)
	}
	picassoWorks := st.Related("picasso", "paints")
	if len(picassoWorks) != 3 {
		t.Errorf("picasso works = %d, want 3", len(picassoWorks))
	}
	if st.Get("guitar").Attr("title") != "Guitar" {
		t.Error("guitar title wrong")
	}
}

func TestModelResolvesOverPaperStore(t *testing.T) {
	rm, err := Model(navigation.IndexedGuidedTour{}).Resolve(PaperStore())
	if err != nil {
		t.Fatal(err)
	}
	// 2 painters + 2 movements, all non-empty.
	if len(rm.Contexts) != 4 {
		t.Fatalf("contexts = %d, want 4", len(rm.Contexts))
	}
	picasso := rm.Context("ByAuthor:picasso")
	if picasso == nil || len(picasso.Members) != 3 {
		t.Fatalf("ByAuthor:picasso = %v", picasso)
	}
	// Year ordering: avignon (1907), guitar (1913), guernica (1937).
	if picasso.Members[0].ID() != "avignon" {
		t.Errorf("first member = %s", picasso.Members[0].ID())
	}
}

func TestSyntheticDeterminism(t *testing.T) {
	spec := SyntheticSpec{Painters: 3, PaintingsPerPainter: 4, Movements: 2, Seed: 42}
	a := Synthetic(spec)
	b := Synthetic(spec)
	if a.Len() != b.Len() {
		t.Fatalf("sizes differ: %d vs %d", a.Len(), b.Len())
	}
	for _, inst := range a.Instances() {
		other := b.Get(inst.ID)
		if other == nil {
			t.Fatalf("instance %s missing from second run", inst.ID)
		}
		for _, attr := range inst.AttrNames() {
			if inst.Attr(attr) != other.Attr(attr) {
				t.Errorf("%s.%s differs: %q vs %q", inst.ID, attr, inst.Attr(attr), other.Attr(attr))
			}
		}
	}
}

// TestSyntheticInjectedRand checks an injected source is honoured: the
// same seed through Rand matches the Seed path, and generation never
// consults the global math/rand.
func TestSyntheticInjectedRand(t *testing.T) {
	spec := SyntheticSpec{Painters: 3, PaintingsPerPainter: 4, Movements: 2, Seed: 42}
	viaSeed := Synthetic(spec)
	spec.Rand = rand.New(rand.NewSource(42))
	spec.Seed = 999 // must be ignored when Rand is set
	viaRand := Synthetic(spec)
	if viaSeed.Len() != viaRand.Len() {
		t.Fatalf("sizes differ: %d vs %d", viaSeed.Len(), viaRand.Len())
	}
	for _, inst := range viaSeed.Instances() {
		other := viaRand.Get(inst.ID)
		if other == nil {
			t.Fatalf("instance %s missing from injected-rand run", inst.ID)
		}
		for _, attr := range inst.AttrNames() {
			if inst.Attr(attr) != other.Attr(attr) {
				t.Errorf("%s.%s differs: %q vs %q", inst.ID, attr, inst.Attr(attr), other.Attr(attr))
			}
		}
	}
}

func TestSyntheticSizes(t *testing.T) {
	st := Synthetic(SyntheticSpec{Painters: 5, PaintingsPerPainter: 7, Movements: 3, Seed: 1})
	if got := len(st.InstancesOf("Painter")); got != 5 {
		t.Errorf("painters = %d", got)
	}
	if got := len(st.InstancesOf("Painting")); got != 35 {
		t.Errorf("paintings = %d", got)
	}
	if got := len(st.InstancesOf("Movement")); got != 3 {
		t.Errorf("movements = %d", got)
	}
	if st.LinkCount("paints") != 35 {
		t.Errorf("paints links = %d", st.LinkCount("paints"))
	}
	if st.LinkCount("includes") != 35 {
		t.Errorf("includes links = %d", st.LinkCount("includes"))
	}
	// No movements at all.
	bare := Synthetic(SyntheticSpec{Painters: 2, PaintingsPerPainter: 2, Seed: 1})
	if bare.LinkCount("includes") != 0 {
		t.Error("movement links generated despite Movements=0")
	}
}

func TestSyntheticResolvesAtScale(t *testing.T) {
	st := Synthetic(SyntheticSpec{Painters: 10, PaintingsPerPainter: 10, Movements: 4, Seed: 7})
	rm, err := Model(navigation.Index{}).Resolve(st)
	if err != nil {
		t.Fatal(err)
	}
	byAuthor := rm.ContextsOf("ByAuthor")
	if len(byAuthor) != 10 {
		t.Errorf("ByAuthor contexts = %d", len(byAuthor))
	}
	total := 0
	for _, rc := range byAuthor {
		total += len(rc.Members)
	}
	if total != 100 {
		t.Errorf("total members = %d", total)
	}
}
