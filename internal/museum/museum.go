// Package museum supplies the paper's running example — a museum web
// application over painters, paintings and movements, with Picasso's
// Guitar, Guernica and Les Demoiselles d'Avignon — plus deterministic
// synthetic generators of arbitrary size for the scaling experiments.
package museum

import (
	"fmt"
	"math/rand"

	"repro/internal/conceptual"
	"repro/internal/navigation"
)

// Schema returns the museum conceptual schema.
func Schema() *conceptual.Schema {
	s := conceptual.NewSchema()
	s.MustAddClass(conceptual.NewClass("Painter",
		conceptual.AttrDef{Name: "name", Type: conceptual.StringAttr, Required: true},
		conceptual.AttrDef{Name: "born", Type: conceptual.IntAttr},
	))
	s.MustAddClass(conceptual.NewClass("Painting",
		conceptual.AttrDef{Name: "title", Type: conceptual.StringAttr, Required: true},
		conceptual.AttrDef{Name: "year", Type: conceptual.IntAttr},
		conceptual.AttrDef{Name: "technique", Type: conceptual.StringAttr},
	))
	s.MustAddClass(conceptual.NewClass("Movement",
		conceptual.AttrDef{Name: "name", Type: conceptual.StringAttr, Required: true},
	))
	s.MustAddRelationship(&conceptual.Relationship{
		Name: "paints", Source: "Painter", Target: "Painting",
		Card: conceptual.OneToMany, Inverse: "paintedBy",
	})
	s.MustAddRelationship(&conceptual.Relationship{
		Name: "includes", Source: "Movement", Target: "Painting",
		Card: conceptual.ManyToMany, Inverse: "belongsTo",
	})
	return s
}

// PaperStore returns the exact dataset of the paper's figures: Picasso
// with Guitar, Guernica and Les Demoiselles d'Avignon (the three nodes of
// the Figure 2 context), plus Dalí and two movements so the §2
// context-crossing scenario is expressible.
func PaperStore() *conceptual.Store {
	st := conceptual.NewStore(Schema())
	st.MustAdd("Painter", "picasso", map[string]string{"name": "Pablo Picasso", "born": "1881"})
	st.MustAdd("Painter", "dali", map[string]string{"name": "Salvador Dali", "born": "1904"})
	st.MustAdd("Painting", "guitar", map[string]string{
		"title": "Guitar", "year": "1913", "technique": "Construction"})
	st.MustAdd("Painting", "guernica", map[string]string{
		"title": "Guernica", "year": "1937", "technique": "Oil on canvas"})
	st.MustAdd("Painting", "avignon", map[string]string{
		"title": "Les Demoiselles d'Avignon", "year": "1907", "technique": "Oil on canvas"})
	st.MustAdd("Painting", "memory", map[string]string{
		"title": "The Persistence of Memory", "year": "1931", "technique": "Oil on canvas"})
	st.MustAdd("Movement", "cubism", map[string]string{"name": "Cubism"})
	st.MustAdd("Movement", "surrealism", map[string]string{"name": "Surrealism"})
	st.MustLink("paints", "picasso", "guitar")
	st.MustLink("paints", "picasso", "guernica")
	st.MustLink("paints", "picasso", "avignon")
	st.MustLink("paints", "dali", "memory")
	st.MustLink("includes", "cubism", "guitar")
	st.MustLink("includes", "cubism", "avignon")
	st.MustLink("includes", "surrealism", "memory")
	st.MustLink("includes", "surrealism", "guernica")
	return st
}

// Model returns the paper's navigational model over the museum schema:
// painting nodes titled by their title attribute, grouped into the
// ByAuthor and ByMovement context families, traversed by the given access
// structure.
func Model(access navigation.AccessStructure) *navigation.Model {
	m := navigation.NewModel()
	m.MustAddNodeClass(&navigation.NodeClass{
		Name: "PaintingNode", Class: "Painting", TitleAttr: "title",
	})
	m.MustAddNodeClass(&navigation.NodeClass{
		Name: "PainterNode", Class: "Painter", TitleAttr: "name",
	})
	m.MustAddLink(&navigation.NavLink{
		Name: "works", Rel: "paints", From: "PainterNode", To: "PaintingNode",
	})
	m.MustAddContext(&navigation.ContextDef{
		Name: "ByAuthor", NodeClass: "PaintingNode",
		GroupBy: "paints", OrderBy: "year", Access: access,
	})
	m.MustAddContext(&navigation.ContextDef{
		Name: "ByMovement", NodeClass: "PaintingNode",
		GroupBy: "includes", OrderBy: "title", Access: access,
	})
	return m
}

// SyntheticSpec sizes a generated museum.
type SyntheticSpec struct {
	// Painters is the number of painters.
	Painters int
	// PaintingsPerPainter is the number of paintings per painter.
	PaintingsPerPainter int
	// Movements is the number of movements paintings are spread over
	// (0 disables movements).
	Movements int
	// Seed makes generation deterministic.
	Seed int64
	// Rand, when non-nil, is the random source used instead of one
	// seeded from Seed — for callers threading one *rand.Rand through
	// a larger deterministic setup. The generator never touches the
	// global math/rand state either way, so synthetic datasets are
	// reproducible across runs and benchmarks stay comparable.
	Rand *rand.Rand
}

// Synthetic generates a museum of the given size. The same spec always
// yields the same store: generation draws only from the spec's injected
// or Seed-derived source, never the global math/rand.
func Synthetic(spec SyntheticSpec) *conceptual.Store {
	rng := spec.Rand
	if rng == nil {
		rng = rand.New(rand.NewSource(spec.Seed))
	}
	st := conceptual.NewStore(Schema())
	for m := 0; m < spec.Movements; m++ {
		id := fmt.Sprintf("movement%03d", m)
		st.MustAdd("Movement", id, map[string]string{"name": fmt.Sprintf("Movement %d", m)})
	}
	for p := 0; p < spec.Painters; p++ {
		painterID := fmt.Sprintf("painter%03d", p)
		st.MustAdd("Painter", painterID, map[string]string{
			"name": fmt.Sprintf("Painter %d", p),
			"born": fmt.Sprintf("%d", 1800+rng.Intn(150)),
		})
		for w := 0; w < spec.PaintingsPerPainter; w++ {
			paintingID := fmt.Sprintf("painting%03d_%03d", p, w)
			st.MustAdd("Painting", paintingID, map[string]string{
				"title": fmt.Sprintf("Work %d of Painter %d", w, p),
				"year":  fmt.Sprintf("%d", 1850+rng.Intn(150)),
			})
			st.MustLink("paints", painterID, paintingID)
			if spec.Movements > 0 {
				mv := fmt.Sprintf("movement%03d", rng.Intn(spec.Movements))
				st.MustLink("includes", mv, paintingID)
			}
		}
	}
	return st
}
