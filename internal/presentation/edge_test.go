package presentation

import (
	"strings"
	"testing"

	"repro/internal/xmldom"
	"repro/internal/xpath"
)

func TestInstructionEvalErrors(t *testing.T) {
	// Each instruction must surface evaluation errors, not swallow them.
	undefinedVar := xpath.MustCompile("$nope")
	cases := []struct {
		name string
		ins  Instruction
	}{
		{"value-of", ValueOf{Select: undefinedVar}},
		{"for-each", ForEach{Select: undefinedVar}},
		{"if", If{Test: undefinedVar}},
		{"choose-when", Choose{Whens: []When{{Test: undefinedVar}}}},
		{"apply-templates", ApplyTemplates{Select: undefinedVar}},
		{"elem-avt", Elem{Name: "x", Attrs: []AttrTemplate{{Name: "a", Value: "{$nope}"}}}},
		{"nested-in-elem", Elem{Name: "x", Body: []Instruction{ValueOf{Select: undefinedVar}}}},
		{"nested-in-if", If{Test: xpath.MustCompile("true()"), Body: []Instruction{ValueOf{Select: undefinedVar}}}},
		{"nested-in-otherwise", Choose{
			Whens:     []When{{Test: xpath.MustCompile("false()")}},
			Otherwise: []Instruction{ValueOf{Select: undefinedVar}},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ss := &Stylesheet{}
			ss.MustAddRule("painting", 0, tc.ins)
			if _, err := ss.Apply(srcDoc(t, paintingSrc)); err == nil {
				t.Errorf("%s swallowed the evaluation error", tc.name)
			}
		})
	}
}

func TestApplyTemplatesNonNodeSet(t *testing.T) {
	ss := &Stylesheet{}
	ss.MustAddRule("painting", 0, ApplyTemplates{Select: xpath.MustCompile("1+1")})
	if _, err := ss.Apply(srcDoc(t, paintingSrc)); err == nil {
		t.Error("apply-templates over number accepted")
	}
}

func TestChooseWhenBodyRunsOnlyFirstMatch(t *testing.T) {
	ss := &Stylesheet{}
	ss.MustAddRule("painting", 0, Choose{
		Whens: []When{
			{Test: xpath.MustCompile("true()"), Body: []Instruction{Text{Data: "first"}}},
			{Test: xpath.MustCompile("true()"), Body: []Instruction{Text{Data: "second"}}},
		},
	})
	nodes, err := ss.Apply(srcDoc(t, paintingSrc))
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 1 || nodes[0].StringValue() != "first" {
		t.Errorf("choose ran wrong branch: %v", nodes)
	}
}

func TestXMLStylesheetTextInstruction(t *testing.T) {
	ss, err := ParseStylesheetString(`<s:stylesheet xmlns:s="urn:repro:style">
	  <s:template match="painting"><s:text>  verbatim  </s:text></s:template>
	</s:stylesheet>`)
	if err != nil {
		t.Fatal(err)
	}
	nodes, err := ss.Apply(srcDoc(t, paintingSrc))
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 1 || nodes[0].StringValue() != "  verbatim  " {
		t.Errorf("s:text output = %v", nodes)
	}
}

func TestXMLStylesheetNestedLiterals(t *testing.T) {
	ss, err := ParseStylesheetString(`<s:stylesheet xmlns:s="urn:repro:style">
	  <s:template match="painting">
	    <div class="outer"><span><s:value-of select="@id"/></span></div>
	  </s:template>
	</s:stylesheet>`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ss.ApplyToDocument(srcDoc(t, paintingSrc))
	if err != nil {
		t.Fatal(err)
	}
	if got := out.String(); !strings.Contains(got, `<div class="outer"><span>guitar</span></div>`) {
		t.Errorf("nested literal output = %s", got)
	}
}

func TestXMLStylesheetBadSelectExpr(t *testing.T) {
	bad := `<s:stylesheet xmlns:s="urn:repro:style">
	  <s:template match="a"><s:for-each select="]["/></s:template>
	</s:stylesheet>`
	if _, err := ParseStylesheetString(bad); err == nil {
		t.Error("bad select expression accepted")
	}
	badIf := `<s:stylesheet xmlns:s="urn:repro:style">
	  <s:template match="a"><s:if test=""/></s:template>
	</s:stylesheet>`
	if _, err := ParseStylesheetString(badIf); err == nil {
		t.Error("if without test accepted")
	}
}

func TestWriteHTMLComments(t *testing.T) {
	e := xmldom.NewElement("div")
	e.AppendChild(&xmldom.Comment{Data: " note "})
	e.AddElement("p").AppendText("x")
	out := WriteHTML(e, HTMLOptions{Indent: "  "})
	if !strings.Contains(out, "<!-- note -->") {
		t.Errorf("comment lost: %s", out)
	}
	// Comments alongside elements still pretty-print.
	if !strings.Contains(out, "\n  <p>") {
		t.Errorf("element not indented next to comment: %s", out)
	}
}

func TestWriteHTMLUppercaseVoid(t *testing.T) {
	e := xmldom.NewElement("BR")
	out := WriteHTML(e, HTMLOptions{})
	if out != "<br>" {
		t.Errorf("uppercase void = %q, want <br>", out)
	}
}

func TestWriteHTMLSkipsXmlnsAttrs(t *testing.T) {
	doc := srcDoc(t, `<html xmlns:x="urn:x"><body x:k="v"/></html>`)
	out := WriteHTML(doc.Root(), HTMLOptions{})
	if strings.Contains(out, "xmlns") {
		t.Errorf("xmlns declaration leaked into HTML: %s", out)
	}
	if !strings.Contains(out, `k="v"`) {
		t.Errorf("namespaced attr local name lost: %s", out)
	}
}
