package presentation

import (
	"sort"
	"strings"

	"repro/internal/xmldom"
)

// voidElements are HTML elements with no closing tag.
var voidElements = map[string]bool{
	"area": true, "base": true, "br": true, "col": true, "embed": true,
	"hr": true, "img": true, "input": true, "link": true, "meta": true,
	"source": true, "track": true, "wbr": true,
}

// HTMLOptions control HTML serialization.
type HTMLOptions struct {
	// Doctype prepends <!DOCTYPE html>.
	Doctype bool
	// Indent pretty-prints element-only content with the given string
	// per level.
	Indent string
}

// WriteHTML serializes an element tree as HTML: void elements are
// self-delimiting, text and attributes are escaped, and the XML-isms
// (self-closing tags, CDATA) are avoided so the output matches what the
// paper's Figures 3–4 show as hand-written pages.
func WriteHTML(root *xmldom.Element, opts HTMLOptions) string {
	var sb strings.Builder
	if opts.Doctype {
		sb.WriteString("<!DOCTYPE html>\n")
	}
	writeHTMLElement(&sb, root, opts, 0)
	if opts.Indent != "" {
		sb.WriteString("\n")
	}
	return sb.String()
}

func writeHTMLElement(sb *strings.Builder, e *xmldom.Element, opts HTMLOptions, depth int) {
	name := strings.ToLower(e.Name.Local)
	sb.WriteString("<")
	sb.WriteString(name)
	// Deterministic attribute order: declaration order (already stable),
	// but sort duplicates-by-name never occur, so this is pure pass-through.
	for _, a := range e.Attrs() {
		if a.Name.Space == "xmlns" || (a.Name.Space == "" && a.Name.Local == "xmlns") {
			continue
		}
		sb.WriteString(" ")
		sb.WriteString(a.Name.Local)
		sb.WriteString(`="`)
		sb.WriteString(escapeHTMLAttr(a.Value))
		sb.WriteString(`"`)
	}
	sb.WriteString(">")
	if voidElements[name] {
		return
	}

	pretty := opts.Indent != "" && htmlElementOnly(e)
	for _, c := range e.Children() {
		switch n := c.(type) {
		case *xmldom.Element:
			if pretty {
				sb.WriteString("\n")
				sb.WriteString(strings.Repeat(opts.Indent, depth+1))
			}
			writeHTMLElement(sb, n, opts, depth+1)
		case *xmldom.Text:
			if pretty && isAllSpace(n.Data) {
				continue
			}
			sb.WriteString(escapeHTMLText(n.Data))
		case *xmldom.Comment:
			if pretty {
				sb.WriteString("\n")
				sb.WriteString(strings.Repeat(opts.Indent, depth+1))
			}
			sb.WriteString("<!--")
			sb.WriteString(n.Data)
			sb.WriteString("-->")
		}
	}
	if pretty {
		sb.WriteString("\n")
		sb.WriteString(strings.Repeat(opts.Indent, depth))
	}
	sb.WriteString("</")
	sb.WriteString(name)
	sb.WriteString(">")
}

func htmlElementOnly(e *xmldom.Element) bool {
	hasElem := false
	for _, c := range e.Children() {
		switch n := c.(type) {
		case *xmldom.Element, *xmldom.Comment:
			hasElem = true
			_ = n
		case *xmldom.Text:
			if !isAllSpace(n.Data) {
				return false
			}
		}
	}
	return hasElem
}

func escapeHTMLText(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

func escapeHTMLAttr(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// CountLines reports the number of lines in a rendered page; the change
// cost analyzer uses it for page-size statistics.
func CountLines(s string) int {
	if s == "" {
		return 0
	}
	return strings.Count(s, "\n") + 1
}

// SortedKeys returns a map's keys sorted; shared by page-set reporting.
func SortedKeys[M ~map[string]V, V any](m M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
