package presentation

import (
	"fmt"
	"strconv"

	"repro/internal/xmldom"
	"repro/internal/xpath"
)

// StyleNamespace is the namespace of stylesheet instruction elements in
// the XML form, playing the role XSL's namespace plays in the paper's
// data/presentation split.
const StyleNamespace = "urn:repro:style"

// ParseStylesheet reads the XML form of a stylesheet:
//
//	<s:stylesheet xmlns:s="urn:repro:style">
//	  <s:template match="painting" priority="1">
//	    <html><body>
//	      <h1><s:value-of select="title"/></h1>
//	      <s:apply-templates/>
//	    </body></html>
//	  </s:template>
//	</s:stylesheet>
//
// Elements in the style namespace are instructions (template, value-of,
// apply-templates, for-each, if, choose/when/otherwise, text); everything
// else is a literal result element whose attributes are attribute value
// templates.
func ParseStylesheet(doc *xmldom.Document) (*Stylesheet, error) {
	root := doc.Root()
	if root == nil || root.Name.Space != StyleNamespace || root.Name.Local != "stylesheet" {
		return nil, fmt.Errorf("presentation: root must be {%s}stylesheet", StyleNamespace)
	}
	ss := &Stylesheet{}
	for _, tmpl := range root.ChildElements() {
		if tmpl.Name.Space != StyleNamespace || tmpl.Name.Local != "template" {
			return nil, fmt.Errorf("presentation: unexpected element <%s> in stylesheet", tmpl.Name.Local)
		}
		match := tmpl.AttrValue("match")
		if match == "" {
			return nil, fmt.Errorf("presentation: template without match attribute")
		}
		priority := 0.0
		if p := tmpl.AttrValue("priority"); p != "" {
			f, err := strconv.ParseFloat(p, 64)
			if err != nil {
				return nil, fmt.Errorf("presentation: template %q: bad priority %q", match, p)
			}
			priority = f
		}
		body, err := parseBody(tmpl)
		if err != nil {
			return nil, fmt.Errorf("presentation: template %q: %w", match, err)
		}
		if err := ss.AddRule(match, priority, body...); err != nil {
			return nil, err
		}
	}
	return ss, nil
}

// ParseStylesheetString is ParseStylesheet over a source string.
func ParseStylesheetString(src string) (*Stylesheet, error) {
	doc, err := xmldom.ParseString(src)
	if err != nil {
		return nil, fmt.Errorf("presentation: stylesheet XML: %w", err)
	}
	return ParseStylesheet(doc)
}

// parseBody converts an element's children into instructions.
func parseBody(parent *xmldom.Element) ([]Instruction, error) {
	var out []Instruction
	for _, child := range parent.Children() {
		switch n := child.(type) {
		case *xmldom.Text:
			// Whitespace-only runs between instructions are layout.
			if trimmed := n.Data; len(trimmed) > 0 {
				if isAllSpace(trimmed) {
					continue
				}
				out = append(out, Text{Data: trimmed})
			}
		case *xmldom.Element:
			ins, err := parseInstruction(n)
			if err != nil {
				return nil, err
			}
			out = append(out, ins)
		}
	}
	return out, nil
}

func isAllSpace(s string) bool {
	for _, r := range s {
		if r != ' ' && r != '\t' && r != '\n' && r != '\r' {
			return false
		}
	}
	return true
}

func parseInstruction(e *xmldom.Element) (Instruction, error) {
	if e.Name.Space != StyleNamespace {
		// Literal result element.
		var attrs []AttrTemplate
		for _, a := range e.Attrs() {
			if a.Name.Space == "xmlns" || (a.Name.Space == "" && a.Name.Local == "xmlns") {
				continue
			}
			attrs = append(attrs, AttrTemplate{Name: a.Name.Local, Value: a.Value})
		}
		body, err := parseBody(e)
		if err != nil {
			return nil, err
		}
		return Elem{Name: e.Name.Local, Attrs: attrs, Body: body}, nil
	}
	switch e.Name.Local {
	case "value-of":
		expr, err := compileAttr(e, "select", true)
		if err != nil {
			return nil, err
		}
		return ValueOf{Select: expr}, nil
	case "apply-templates":
		expr, err := compileAttr(e, "select", false)
		if err != nil {
			return nil, err
		}
		return ApplyTemplates{Select: expr}, nil
	case "for-each":
		expr, err := compileAttr(e, "select", true)
		if err != nil {
			return nil, err
		}
		body, err := parseBody(e)
		if err != nil {
			return nil, err
		}
		return ForEach{Select: expr, Body: body}, nil
	case "if":
		expr, err := compileAttr(e, "test", true)
		if err != nil {
			return nil, err
		}
		body, err := parseBody(e)
		if err != nil {
			return nil, err
		}
		return If{Test: expr, Body: body}, nil
	case "choose":
		var c Choose
		for _, branch := range e.ChildElements() {
			if branch.Name.Space != StyleNamespace {
				return nil, fmt.Errorf("unexpected <%s> in choose", branch.Name.Local)
			}
			switch branch.Name.Local {
			case "when":
				expr, err := compileAttr(branch, "test", true)
				if err != nil {
					return nil, err
				}
				body, err := parseBody(branch)
				if err != nil {
					return nil, err
				}
				c.Whens = append(c.Whens, When{Test: expr, Body: body})
			case "otherwise":
				body, err := parseBody(branch)
				if err != nil {
					return nil, err
				}
				c.Otherwise = body
			default:
				return nil, fmt.Errorf("unexpected instruction <%s> in choose", branch.Name.Local)
			}
		}
		if len(c.Whens) == 0 {
			return nil, fmt.Errorf("choose without when branches")
		}
		return c, nil
	case "text":
		return Text{Data: e.StringValue()}, nil
	default:
		return nil, fmt.Errorf("unknown instruction <%s>", e.Name.Local)
	}
}

func compileAttr(e *xmldom.Element, attr string, required bool) (*xpath.Expr, error) {
	src := e.AttrValue(attr)
	if src == "" {
		if required {
			return nil, fmt.Errorf("<%s> requires %s attribute", e.Name.Local, attr)
		}
		return nil, nil
	}
	expr, err := xpath.Compile(src)
	if err != nil {
		return nil, fmt.Errorf("<%s> %s=%q: %w", e.Name.Local, attr, src, err)
	}
	return expr, nil
}
