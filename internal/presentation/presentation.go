// Package presentation implements the presentation layer of the paper's
// architecture: a template-rule stylesheet engine with XSLT-like semantics
// (match patterns, apply-templates, value-of, for-each, if/choose) over the
// xmldom/xpath stack, plus an HTML serializer.
//
// The paper takes the XML + XSL split of data and presentation as its
// starting point (§1, §6); this package supplies that half of the
// separation so the navigational aspect can be studied against it. Like
// the other substrates it is implemented from scratch on the standard
// library.
package presentation

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/xmldom"
	"repro/internal/xpath"
)

// Instruction is one template-body operation that emits output nodes.
type Instruction interface {
	exec(ec *execCtx, out *xmldom.Element) error
}

// execCtx carries the current source node and engine state.
type execCtx struct {
	engine *Stylesheet
	node   xmldom.Node
	pos    int
	size   int
	depth  int
}

func (ec *execCtx) xctx() *xpath.Context {
	return &xpath.Context{Node: ec.node, Position: ec.pos, Size: ec.size}
}

// maxApplyDepth bounds template recursion to fail fast on cyclic rules.
const maxApplyDepth = 200

// Text emits a literal text node.
type Text struct{ Data string }

func (t Text) exec(_ *execCtx, out *xmldom.Element) error {
	out.AppendText(t.Data)
	return nil
}

// ValueOf evaluates an expression and emits its string value.
type ValueOf struct{ Select *xpath.Expr }

func (v ValueOf) exec(ec *execCtx, out *xmldom.Element) error {
	val, err := v.Select.Eval(ec.xctx())
	if err != nil {
		return fmt.Errorf("presentation: value-of %s: %w", v.Select, err)
	}
	out.AppendText(xpath.StringOf(val))
	return nil
}

// AttrTemplate is one attribute on a literal element; Value supports
// {expr} attribute value templates.
type AttrTemplate struct {
	Name  string
	Value string
}

// Elem emits a literal element with attribute value templates and a body.
type Elem struct {
	Name  string
	Attrs []AttrTemplate
	Body  []Instruction
}

func (e Elem) exec(ec *execCtx, out *xmldom.Element) error {
	el := xmldom.NewElement(e.Name)
	for _, a := range e.Attrs {
		v, err := expandAVT(ec, a.Value)
		if err != nil {
			return err
		}
		el.SetAttr(a.Name, v)
	}
	out.AppendChild(el)
	for _, ins := range e.Body {
		if err := ins.exec(ec, el); err != nil {
			return err
		}
	}
	return nil
}

// expandAVT expands an attribute value template: {expr} parts evaluate as
// XPath string expressions; {{ and }} escape literal braces.
func expandAVT(ec *execCtx, tmpl string) (string, error) {
	var sb strings.Builder
	for i := 0; i < len(tmpl); i++ {
		c := tmpl[i]
		switch c {
		case '{':
			if i+1 < len(tmpl) && tmpl[i+1] == '{' {
				sb.WriteByte('{')
				i++
				continue
			}
			end := strings.IndexByte(tmpl[i+1:], '}')
			if end < 0 {
				return "", fmt.Errorf("presentation: unterminated { in attribute template %q", tmpl)
			}
			src := tmpl[i+1 : i+1+end]
			expr, err := xpath.Compile(src)
			if err != nil {
				return "", fmt.Errorf("presentation: attribute template %q: %w", tmpl, err)
			}
			val, err := expr.Eval(ec.xctx())
			if err != nil {
				return "", fmt.Errorf("presentation: attribute template %q: %w", tmpl, err)
			}
			sb.WriteString(xpath.StringOf(val))
			i += end + 1
		case '}':
			if i+1 < len(tmpl) && tmpl[i+1] == '}' {
				sb.WriteByte('}')
				i++
				continue
			}
			return "", fmt.Errorf("presentation: stray } in attribute template %q", tmpl)
		default:
			sb.WriteByte(c)
		}
	}
	return sb.String(), nil
}

// ForEach iterates a node-set, executing the body with each node as the
// context node.
type ForEach struct {
	Select *xpath.Expr
	Body   []Instruction
}

func (f ForEach) exec(ec *execCtx, out *xmldom.Element) error {
	val, err := f.Select.Eval(ec.xctx())
	if err != nil {
		return fmt.Errorf("presentation: for-each %s: %w", f.Select, err)
	}
	ns, ok := val.(xpath.NodeSet)
	if !ok {
		return fmt.Errorf("presentation: for-each %s: not a node-set", f.Select)
	}
	for i, n := range ns {
		sub := &execCtx{engine: ec.engine, node: n, pos: i + 1, size: len(ns), depth: ec.depth}
		for _, ins := range f.Body {
			if err := ins.exec(sub, out); err != nil {
				return err
			}
		}
	}
	return nil
}

// If executes its body when the test is true.
type If struct {
	Test *xpath.Expr
	Body []Instruction
}

func (i If) exec(ec *execCtx, out *xmldom.Element) error {
	val, err := i.Test.Eval(ec.xctx())
	if err != nil {
		return fmt.Errorf("presentation: if %s: %w", i.Test, err)
	}
	if !xpath.BoolOf(val) {
		return nil
	}
	for _, ins := range i.Body {
		if err := ins.exec(ec, out); err != nil {
			return err
		}
	}
	return nil
}

// When is one branch of a Choose.
type When struct {
	Test *xpath.Expr
	Body []Instruction
}

// Choose executes the first When whose test is true, else Otherwise.
type Choose struct {
	Whens     []When
	Otherwise []Instruction
}

func (c Choose) exec(ec *execCtx, out *xmldom.Element) error {
	for _, w := range c.Whens {
		val, err := w.Test.Eval(ec.xctx())
		if err != nil {
			return fmt.Errorf("presentation: when %s: %w", w.Test, err)
		}
		if xpath.BoolOf(val) {
			for _, ins := range w.Body {
				if err := ins.exec(ec, out); err != nil {
					return err
				}
			}
			return nil
		}
	}
	for _, ins := range c.Otherwise {
		if err := ins.exec(ec, out); err != nil {
			return err
		}
	}
	return nil
}

// ApplyTemplates recurses template processing into the selected nodes
// (children by default).
type ApplyTemplates struct {
	// Select chooses the nodes to process; nil means child::node().
	Select *xpath.Expr
}

func (a ApplyTemplates) exec(ec *execCtx, out *xmldom.Element) error {
	if ec.depth >= maxApplyDepth {
		return fmt.Errorf("presentation: apply-templates recursion exceeds %d levels (cyclic rules?)", maxApplyDepth)
	}
	var nodes []xmldom.Node
	if a.Select == nil {
		nodes = childNodesOf(ec.node)
	} else {
		val, err := a.Select.Eval(ec.xctx())
		if err != nil {
			return fmt.Errorf("presentation: apply-templates %s: %w", a.Select, err)
		}
		ns, ok := val.(xpath.NodeSet)
		if !ok {
			return fmt.Errorf("presentation: apply-templates %s: not a node-set", a.Select)
		}
		nodes = ns
	}
	for i, n := range nodes {
		sub := &execCtx{engine: ec.engine, node: n, pos: i + 1, size: len(nodes), depth: ec.depth + 1}
		if err := ec.engine.applyTo(sub, out); err != nil {
			return err
		}
	}
	return nil
}

func childNodesOf(n xmldom.Node) []xmldom.Node {
	switch v := n.(type) {
	case *xmldom.Document:
		return v.Children()
	case *xmldom.Element:
		return v.Children()
	default:
		return nil
	}
}

// Rule is one template rule: a match pattern, a priority and a body.
type Rule struct {
	Match    *xpath.Expr
	Priority float64
	Body     []Instruction
	seq      int
}

// Stylesheet is an ordered set of template rules. The zero value has no
// rules; Apply then runs only the built-in default rules (descend and copy
// text), like an empty XSLT stylesheet.
type Stylesheet struct {
	rules []*Rule
}

// AddRule appends a rule with the given match pattern and priority.
// Among rules that match the same node, the highest priority wins; ties go
// to the most recently added rule, as in XSLT.
func (ss *Stylesheet) AddRule(match string, priority float64, body ...Instruction) error {
	expr, err := xpath.Compile(match)
	if err != nil {
		return fmt.Errorf("presentation: rule pattern %q: %w", match, err)
	}
	ss.rules = append(ss.rules, &Rule{Match: expr, Priority: priority, Body: body, seq: len(ss.rules)})
	return nil
}

// MustAddRule is AddRule that panics, for statically known stylesheets.
func (ss *Stylesheet) MustAddRule(match string, priority float64, body ...Instruction) {
	if err := ss.AddRule(match, priority, body...); err != nil {
		panic(err)
	}
}

// RuleCount returns the number of explicit rules.
func (ss *Stylesheet) RuleCount() int { return len(ss.rules) }

// findRule returns the best matching rule for the node, or nil.
func (ss *Stylesheet) findRule(node xmldom.Node) (*Rule, error) {
	var candidates []*Rule
	for _, r := range ss.rules {
		ok, err := xpath.Matches(r.Match, node)
		if err != nil {
			return nil, err
		}
		if ok {
			candidates = append(candidates, r)
		}
	}
	if len(candidates) == 0 {
		return nil, nil
	}
	sort.SliceStable(candidates, func(i, j int) bool {
		if candidates[i].Priority != candidates[j].Priority {
			return candidates[i].Priority > candidates[j].Priority
		}
		return candidates[i].seq > candidates[j].seq
	})
	return candidates[0], nil
}

// applyTo processes one node: explicit rule if any, else the built-in
// default rules (elements/documents descend; text copies; comments and
// PIs produce nothing).
func (ss *Stylesheet) applyTo(ec *execCtx, out *xmldom.Element) error {
	rule, err := ss.findRule(ec.node)
	if err != nil {
		return err
	}
	if rule != nil {
		for _, ins := range rule.Body {
			if err := ins.exec(ec, out); err != nil {
				return err
			}
		}
		return nil
	}
	switch n := ec.node.(type) {
	case *xmldom.Document, *xmldom.Element:
		return (ApplyTemplates{}).exec(ec, out)
	case *xmldom.Text:
		out.AppendText(n.Data)
		return nil
	default:
		return nil
	}
}

// Apply transforms a source document, returning the output fragment's
// nodes (often a single root element).
func (ss *Stylesheet) Apply(doc *xmldom.Document) ([]xmldom.Node, error) {
	if doc == nil {
		return nil, fmt.Errorf("presentation: nil source document")
	}
	holder := xmldom.NewElement("result-holder")
	ec := &execCtx{engine: ss, node: doc, pos: 1, size: 1}
	if err := ss.applyTo(ec, holder); err != nil {
		return nil, err
	}
	return holder.Children(), nil
}

// ApplyToDocument transforms a source document and requires the result to
// be a single element, returned as a new document.
func (ss *Stylesheet) ApplyToDocument(doc *xmldom.Document) (*xmldom.Document, error) {
	nodes, err := ss.Apply(doc)
	if err != nil {
		return nil, err
	}
	var root *xmldom.Element
	for _, n := range nodes {
		if e, ok := n.(*xmldom.Element); ok {
			if root != nil {
				return nil, fmt.Errorf("presentation: result has multiple root elements")
			}
			root = e
		} else if t, ok := n.(*xmldom.Text); ok && strings.TrimSpace(t.Data) != "" {
			return nil, fmt.Errorf("presentation: result has top-level text %q", t.Data)
		}
	}
	if root == nil {
		return nil, fmt.Errorf("presentation: result has no root element")
	}
	return xmldom.NewDocument(root.Clone()), nil
}
