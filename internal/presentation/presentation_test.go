package presentation

import (
	"strings"
	"testing"

	"repro/internal/xmldom"
	"repro/internal/xpath"
)

const paintingSrc = `<painting id="guitar">
  <title>Guitar</title>
  <year>1913</year>
  <technique>Oil on canvas</technique>
</painting>`

func srcDoc(t *testing.T, src string) *xmldom.Document {
	t.Helper()
	d, err := xmldom.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestValueOfAndLiteralElements(t *testing.T) {
	ss := &Stylesheet{}
	ss.MustAddRule("painting", 0,
		Elem{Name: "html", Body: []Instruction{
			Elem{Name: "h1", Body: []Instruction{ValueOf{Select: xpath.MustCompile("title")}}},
			Elem{Name: "p", Attrs: []AttrTemplate{{Name: "class", Value: "year"}}, Body: []Instruction{
				Text{Data: "Painted in "},
				ValueOf{Select: xpath.MustCompile("year")},
			}},
		}},
	)
	out, err := ss.ApplyToDocument(srcDoc(t, paintingSrc))
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"<h1>Guitar</h1>", `<p class="year">Painted in 1913</p>`} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestDefaultRulesCopyText(t *testing.T) {
	ss := &Stylesheet{} // no rules: default descend + copy text
	nodes, err := ss.Apply(srcDoc(t, paintingSrc))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, n := range nodes {
		if txt, ok := n.(*xmldom.Text); ok {
			sb.WriteString(txt.Data)
		}
	}
	for _, want := range []string{"Guitar", "1913", "Oil on canvas"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("default rules dropped %q: %q", want, sb.String())
		}
	}
}

func TestApplyTemplatesWithSelect(t *testing.T) {
	ss := &Stylesheet{}
	ss.MustAddRule("painting", 0,
		Elem{Name: "ul", Body: []Instruction{
			ApplyTemplates{Select: xpath.MustCompile("title | year")},
		}},
	)
	ss.MustAddRule("title", 0,
		Elem{Name: "li", Body: []Instruction{ValueOf{Select: xpath.MustCompile(".")}}},
	)
	ss.MustAddRule("year", 0,
		Elem{Name: "li", Attrs: []AttrTemplate{{Name: "class", Value: "y{.}"}}},
	)
	out, err := ss.ApplyToDocument(srcDoc(t, paintingSrc))
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "<li>Guitar</li>") {
		t.Errorf("title rule output missing: %s", got)
	}
	if !strings.Contains(got, `<li class="y1913"/>`) {
		t.Errorf("year AVT output missing: %s", got)
	}
	if strings.Contains(got, "Oil on canvas") {
		t.Errorf("unselected technique leaked: %s", got)
	}
}

func TestForEachPositionAndSize(t *testing.T) {
	src := `<ctx><m>a</m><m>b</m><m>c</m></ctx>`
	ss := &Stylesheet{}
	ss.MustAddRule("ctx", 0,
		ForEach{Select: xpath.MustCompile("m"), Body: []Instruction{
			Elem{Name: "i", Attrs: []AttrTemplate{
				{Name: "pos", Value: "{position()}"},
				{Name: "of", Value: "{last()}"},
			}, Body: []Instruction{ValueOf{Select: xpath.MustCompile(".")}}},
		}},
	)
	nodes, err := ss.Apply(srcDoc(t, src))
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 3 {
		t.Fatalf("for-each emitted %d nodes", len(nodes))
	}
	first := nodes[0].(*xmldom.Element)
	if first.AttrValue("pos") != "1" || first.AttrValue("of") != "3" {
		t.Errorf("first = %s", xmldom.OuterXML(first))
	}
	last := nodes[2].(*xmldom.Element)
	if last.AttrValue("pos") != "3" || last.Text() != "c" {
		t.Errorf("last = %s", xmldom.OuterXML(last))
	}
}

func TestIfAndChoose(t *testing.T) {
	ss := &Stylesheet{}
	ss.MustAddRule("painting", 0,
		If{Test: xpath.MustCompile("year > 1910"), Body: []Instruction{Text{Data: "modern"}}},
		If{Test: xpath.MustCompile("year > 2000"), Body: []Instruction{Text{Data: "contemporary"}}},
		Choose{
			Whens: []When{
				{Test: xpath.MustCompile("technique = 'Fresco'"), Body: []Instruction{Text{Data: " fresco"}}},
				{Test: xpath.MustCompile("technique = 'Oil on canvas'"), Body: []Instruction{Text{Data: " oil"}}},
			},
			Otherwise: []Instruction{Text{Data: " unknown"}},
		},
	)
	nodes, err := ss.Apply(srcDoc(t, paintingSrc))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, n := range nodes {
		sb.WriteString(n.StringValue())
	}
	if sb.String() != "modern oil" {
		t.Errorf("conditional output = %q, want %q", sb.String(), "modern oil")
	}
}

func TestChooseOtherwise(t *testing.T) {
	ss := &Stylesheet{}
	ss.MustAddRule("painting", 0,
		Choose{
			Whens:     []When{{Test: xpath.MustCompile("false()"), Body: []Instruction{Text{Data: "no"}}}},
			Otherwise: []Instruction{Text{Data: "fallback"}},
		},
	)
	nodes, err := ss.Apply(srcDoc(t, paintingSrc))
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 1 || nodes[0].StringValue() != "fallback" {
		t.Errorf("otherwise output = %v", nodes)
	}
}

func TestRulePriorityAndTies(t *testing.T) {
	ss := &Stylesheet{}
	ss.MustAddRule("title", 1, Text{Data: "low"})
	ss.MustAddRule("title", 5, Text{Data: "high"})
	ss.MustAddRule("year", 0, Text{Data: "first"})
	ss.MustAddRule("year", 0, Text{Data: "second"}) // tie: later wins
	ss.MustAddRule("painting", 0, ApplyTemplates{Select: xpath.MustCompile("title|year")})
	nodes, err := ss.Apply(srcDoc(t, paintingSrc))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, n := range nodes {
		sb.WriteString(n.StringValue())
	}
	if sb.String() != "highsecond" {
		t.Errorf("priority resolution = %q, want %q", sb.String(), "highsecond")
	}
	if ss.RuleCount() != 5 {
		t.Errorf("RuleCount = %d", ss.RuleCount())
	}
}

func TestAVTEscapes(t *testing.T) {
	ss := &Stylesheet{}
	ss.MustAddRule("painting", 0,
		Elem{Name: "a", Attrs: []AttrTemplate{
			{Name: "literal", Value: "brace {{not-an-expr}} done"},
			{Name: "mixed", Value: "id-{@id}-x"},
		}},
	)
	out, err := ss.ApplyToDocument(srcDoc(t, paintingSrc))
	if err != nil {
		t.Fatal(err)
	}
	root := out.Root()
	if got := root.AttrValue("literal"); got != "brace {not-an-expr} done" {
		t.Errorf("escaped AVT = %q", got)
	}
	if got := root.AttrValue("mixed"); got != "id-guitar-x" {
		t.Errorf("mixed AVT = %q", got)
	}
}

func TestAVTErrors(t *testing.T) {
	for _, avt := range []string{"{unclosed", "stray } here", "{bad expr ("} {
		ss := &Stylesheet{}
		ss.MustAddRule("painting", 0,
			Elem{Name: "a", Attrs: []AttrTemplate{{Name: "v", Value: avt}}},
		)
		if _, err := ss.Apply(srcDoc(t, paintingSrc)); err == nil {
			t.Errorf("AVT %q accepted", avt)
		}
	}
}

func TestRecursionGuard(t *testing.T) {
	// A rule that applies templates to itself loops; the engine must
	// fail fast instead of hanging.
	ss := &Stylesheet{}
	ss.MustAddRule("painting", 0, ApplyTemplates{Select: xpath.MustCompile(".")})
	if _, err := ss.Apply(srcDoc(t, paintingSrc)); err == nil {
		t.Error("cyclic rules should error")
	} else if !strings.Contains(err.Error(), "recursion") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestApplyErrors(t *testing.T) {
	ss := &Stylesheet{}
	if err := ss.AddRule("][", 0); err == nil {
		t.Error("bad pattern accepted")
	}
	if _, err := ss.Apply(nil); err == nil {
		t.Error("nil document accepted")
	}
	// for-each over a non-node-set.
	bad := &Stylesheet{}
	bad.MustAddRule("painting", 0, ForEach{Select: xpath.MustCompile("1+1")})
	if _, err := bad.Apply(srcDoc(t, paintingSrc)); err == nil {
		t.Error("for-each over number accepted")
	}
	// ApplyToDocument with multiple roots.
	multi := &Stylesheet{}
	multi.MustAddRule("painting", 0, Elem{Name: "a"}, Elem{Name: "b"})
	if _, err := multi.ApplyToDocument(srcDoc(t, paintingSrc)); err == nil {
		t.Error("multi-root result accepted by ApplyToDocument")
	}
	// ApplyToDocument with no element.
	none := &Stylesheet{}
	none.MustAddRule("painting", 0, Text{Data: "only text"})
	if _, err := none.ApplyToDocument(srcDoc(t, paintingSrc)); err == nil {
		t.Error("element-less result accepted by ApplyToDocument")
	}
}

const xmlStylesheet = `<s:stylesheet xmlns:s="urn:repro:style">
  <s:template match="painting" priority="1">
    <html>
      <body>
        <h1><s:value-of select="title"/></h1>
        <s:if test="year">
          <p>Year: <s:value-of select="year"/></p>
        </s:if>
        <ul>
          <s:for-each select="*">
            <li class="{name(.)}"><s:value-of select="."/></li>
          </s:for-each>
        </ul>
        <s:choose>
          <s:when test="year &gt; 1910">modern</s:when>
          <s:otherwise>classic</s:otherwise>
        </s:choose>
      </body>
    </html>
  </s:template>
</s:stylesheet>`

func TestParseStylesheetXML(t *testing.T) {
	ss, err := ParseStylesheetString(xmlStylesheet)
	if err != nil {
		t.Fatal(err)
	}
	if ss.RuleCount() != 1 {
		t.Fatalf("rules = %d", ss.RuleCount())
	}
	out, err := ss.ApplyToDocument(srcDoc(t, paintingSrc))
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"<h1>Guitar</h1>",
		"<p>Year: 1913</p>",
		`<li class="title">Guitar</li>`,
		`<li class="technique">Oil on canvas</li>`,
		"modern",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("XML stylesheet output missing %q:\n%s", want, got)
		}
	}
}

func TestParseStylesheetErrors(t *testing.T) {
	bad := []string{
		`<stylesheet/>`, // wrong namespace
		`<s:stylesheet xmlns:s="urn:repro:style"><wrong/></s:stylesheet>`,
		`<s:stylesheet xmlns:s="urn:repro:style"><s:template/></s:stylesheet>`,                                    // no match
		`<s:stylesheet xmlns:s="urn:repro:style"><s:template match="a" priority="NaNa"/></s:stylesheet>`,          // bad priority
		`<s:stylesheet xmlns:s="urn:repro:style"><s:template match="a"><s:value-of/></s:template></s:stylesheet>`, // value-of without select
		`<s:stylesheet xmlns:s="urn:repro:style"><s:template match="a"><s:bogus/></s:template></s:stylesheet>`,    // unknown instruction
		`<s:stylesheet xmlns:s="urn:repro:style"><s:template match="a"><s:choose><div/></s:choose></s:template></s:stylesheet>`,
		`<s:stylesheet xmlns:s="urn:repro:style"><s:template match="a"><s:choose/></s:template></s:stylesheet>`, // choose without when
		`not xml`,
	}
	for _, src := range bad {
		if _, err := ParseStylesheetString(src); err == nil {
			t.Errorf("ParseStylesheetString accepted:\n%s", src)
		}
	}
}

func TestWriteHTML(t *testing.T) {
	doc := srcDoc(t, `<html><head><meta charset="utf-8"/><title>T</title></head>`+
		`<body><p>a &amp; b</p><br/><img src="x.png"/><a href="next.html">Next &gt;</a></body></html>`)
	out := WriteHTML(doc.Root(), HTMLOptions{Doctype: true})
	for _, want := range []string{
		"<!DOCTYPE html>",
		`<meta charset="utf-8">`, // void, not self-closed
		"<br>",
		`<img src="x.png">`,
		"<p>a &amp; b</p>",
		"Next &gt;</a>",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("HTML missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "<br/>") || strings.Contains(out, "<br></br>") {
		t.Errorf("void element serialized wrong:\n%s", out)
	}
}

func TestWriteHTMLIndent(t *testing.T) {
	doc := srcDoc(t, `<html><body><ul><li>one</li><li>two</li></ul></body></html>`)
	out := WriteHTML(doc.Root(), HTMLOptions{Indent: "  "})
	if !strings.Contains(out, "\n  <body>") {
		t.Errorf("body not indented:\n%s", out)
	}
	if !strings.Contains(out, "<li>one</li>") {
		t.Errorf("mixed-content li must stay inline:\n%s", out)
	}
}

func TestWriteHTMLEscaping(t *testing.T) {
	e := xmldom.NewElement("p")
	e.SetAttr("title", `tricky "quotes" & <tags>`)
	e.AppendText(`body <script> & stuff`)
	out := WriteHTML(e, HTMLOptions{})
	if strings.Contains(out, "<script>") {
		t.Errorf("text not escaped: %s", out)
	}
	if !strings.Contains(out, "&quot;quotes&quot;") {
		t.Errorf("attr quotes not escaped: %s", out)
	}
}

func TestCountLines(t *testing.T) {
	if CountLines("") != 0 || CountLines("one") != 1 || CountLines("a\nb\nc") != 3 {
		t.Error("CountLines wrong")
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"c": 1, "a": 2, "b": 3}
	if got := SortedKeys(m); got[0] != "a" || got[2] != "c" {
		t.Errorf("SortedKeys = %v", got)
	}
}
