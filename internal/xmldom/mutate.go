package xmldom

import "fmt"

// adoptTree stamps the owning document onto a node and its descendants.
func adoptTree(n Node, doc *Document) {
	switch v := n.(type) {
	case *Element:
		v.doc = doc
		for _, a := range v.attrs {
			a.owner = v
		}
		for _, c := range v.children {
			adoptTree(c, doc)
		}
	case *Text:
		v.doc = doc
	case *Comment:
		v.doc = doc
	case *ProcInst:
		v.doc = doc
	}
}

func setParent(n Node, parent Node) {
	switch v := n.(type) {
	case *Element:
		v.parent = parent
	case *Text:
		v.parent = parent
	case *Comment:
		v.parent = parent
	case *ProcInst:
		v.parent = parent
	default:
		panic(fmt.Sprintf("xmldom: node type %v cannot be a child", n.Type()))
	}
}

// AppendChild adds n as the last child of e and returns e for chaining.
// The child is adopted into e's document.
func (e *Element) AppendChild(n Node) *Element {
	setParent(n, e)
	adoptTree(n, e.doc)
	e.children = append(e.children, n)
	return e
}

// AppendText appends a text node with the given data and returns e.
func (e *Element) AppendText(data string) *Element {
	return e.AppendChild(NewText(data))
}

// AddElement creates a child element with the given local name, appends it,
// and returns the new child (not e), supporting fluent tree building.
func (e *Element) AddElement(local string) *Element {
	c := NewElement(local)
	e.AppendChild(c)
	return c
}

// AddElementNS creates and appends a namespaced child element, returning it.
func (e *Element) AddElementNS(space, local string) *Element {
	c := NewElementNS(space, local)
	e.AppendChild(c)
	return c
}

// InsertChildAt inserts n at index i among e's children (clamped to the
// valid range) and returns e.
func (e *Element) InsertChildAt(i int, n Node) *Element {
	if i < 0 {
		i = 0
	}
	if i > len(e.children) {
		i = len(e.children)
	}
	setParent(n, e)
	adoptTree(n, e.doc)
	e.children = append(e.children, nil)
	copy(e.children[i+1:], e.children[i:])
	e.children[i] = n
	return e
}

// RemoveChild detaches n from e, reporting whether it was a child.
func (e *Element) RemoveChild(n Node) bool {
	for i, c := range e.children {
		if c == n {
			setParent(n, nil)
			adoptTree(n, nil)
			e.children = append(e.children[:i], e.children[i+1:]...)
			return true
		}
	}
	return false
}

// RemoveAllChildren detaches every child of e.
func (e *Element) RemoveAllChildren() {
	for _, c := range e.children {
		setParent(c, nil)
		adoptTree(c, nil)
	}
	e.children = nil
}

// ChildIndex returns the position of n among e's children, or -1.
func (e *Element) ChildIndex(n Node) int {
	for i, c := range e.children {
		if c == n {
			return i
		}
	}
	return -1
}

// Clone returns a deep copy of the element, detached from any document.
func (e *Element) Clone() *Element {
	out := &Element{Name: e.Name}
	for _, a := range e.attrs {
		out.attrs = append(out.attrs, &Attr{Name: a.Name, Value: a.Value, owner: out})
	}
	for _, c := range e.children {
		out.AppendChild(CloneNode(c))
	}
	return out
}

// CloneNode deep-copies any child-capable node (element, text, comment, PI).
func CloneNode(n Node) Node {
	switch v := n.(type) {
	case *Element:
		return v.Clone()
	case *Text:
		return &Text{Data: v.Data, CData: v.CData}
	case *Comment:
		return &Comment{Data: v.Data}
	case *ProcInst:
		return &ProcInst{Target: v.Target, Data: v.Data}
	default:
		panic(fmt.Sprintf("xmldom: cannot clone node type %v", n.Type()))
	}
}

// Clone returns a deep copy of the document.
func (d *Document) Clone() *Document {
	out := &Document{BaseURI: d.BaseURI}
	for _, c := range d.children {
		cc := CloneNode(c)
		setParent(cc, out)
		adoptTree(cc, out)
		out.children = append(out.children, cc)
	}
	return out
}

// NewDocument returns a document with the given element installed as root.
func NewDocument(root *Element) *Document {
	d := &Document{}
	if root != nil {
		d.SetRoot(root)
	}
	return d
}

// GetElementByID searches the document for an element whose xml:id or id
// attribute equals id, returning nil when absent. This implements the
// DTD-less ID lookup used by XPointer shorthand pointers.
func (d *Document) GetElementByID(id string) *Element {
	root := d.Root()
	if root == nil || id == "" {
		return nil
	}
	if elementID(root) == id {
		return root
	}
	var found *Element
	root.Descendants(func(e *Element) bool {
		if elementID(e) == id {
			found = e
			return false
		}
		return true
	})
	return found
}

// XMLNamespace is the URI bound to the reserved xml prefix.
const XMLNamespace = "http://www.w3.org/XML/1998/namespace"

func elementID(e *Element) string {
	if v, ok := e.Attr(XMLNamespace, "id"); ok {
		return v
	}
	if v, ok := e.Attr("", "id"); ok {
		return v
	}
	return ""
}

// ElementID returns the element's xml:id or id attribute value, or "".
func ElementID(e *Element) string { return elementID(e) }

// docOrderPath returns the child-index path from the document (or detached
// root) down to n. Attribute nodes sort just after their owner element and
// before its children, per XPath document order; they are keyed by owner
// path plus an attribute ordinal.
func docOrderPath(n Node) []int {
	var path []int
	cur := n
	if a, ok := n.(*Attr); ok {
		if a.owner == nil {
			return []int{-1}
		}
		idx := 0
		for i, at := range a.owner.attrs {
			if at == a {
				idx = i
				break
			}
		}
		path = append(path, idx, -1) // reversed later; -1 sorts attrs before children
		cur = a.owner
	}
	for {
		parent := cur.ParentNode()
		if parent == nil {
			break
		}
		var idx int
		switch p := parent.(type) {
		case *Element:
			idx = p.ChildIndex(cur)
		case *Document:
			idx = -1
			for i, c := range p.children {
				if c == cur {
					idx = i
					break
				}
			}
		}
		path = append(path, idx)
		cur = parent
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// CompareDocOrder orders two nodes of the same tree: -1 when a precedes b,
// +1 when it follows, 0 when identical. Nodes from different trees get a
// stable but arbitrary order.
func CompareDocOrder(a, b Node) int {
	if a == b {
		return 0
	}
	pa, pb := docOrderPath(a), docOrderPath(b)
	for i := 0; i < len(pa) && i < len(pb); i++ {
		switch {
		case pa[i] < pb[i]:
			return -1
		case pa[i] > pb[i]:
			return 1
		}
	}
	switch {
	case len(pa) < len(pb):
		return -1
	case len(pa) > len(pb):
		return 1
	}
	return 0
}
