// Package xmldom implements a lightweight, namespace-aware XML document
// object model on top of encoding/xml's tokenizer.
//
// The standard library decodes XML into Go structs, which is unsuitable for
// processing generic documents such as XLink linkbases whose vocabulary is
// open-ended. xmldom parses any well-formed document into a mutable tree of
// nodes (Document, Element, Text, Comment, ProcInst and attribute nodes),
// preserves namespace declarations, and serializes trees back to XML.
//
// The model intentionally mirrors the XPath 1.0 data model: every node has a
// parent, elements own ordered children and attribute nodes, and every node
// has a string-value. Package xpath evaluates expressions directly over this
// tree, and packages xpointer and xlink build on both.
package xmldom
