package xmldom

import (
	"strings"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, src string) *Document {
	t.Helper()
	doc, err := ParseString(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	out := doc.String()
	doc2, err := ParseString(out)
	if err != nil {
		t.Fatalf("reparse %q: %v", out, err)
	}
	if doc2.String() != out {
		t.Errorf("serialization not a fixpoint:\n first: %s\nsecond: %s", out, doc2.String())
	}
	return doc2
}

func TestRoundTripBasic(t *testing.T) {
	tests := []string{
		`<a/>`,
		`<a x="1" y="two"/>`,
		`<a>text</a>`,
		`<a><b/><c>mixed</c>tail</a>`,
		`<a>&lt;escaped&gt; &amp; "quoted"</a>`,
		`<a attr="&lt;v&gt;&quot;&amp;"/>`,
		`<root><!-- comment --><?pi data?></root>`,
	}
	for _, src := range tests {
		roundTrip(t, src)
	}
}

func TestRoundTripNamespaces(t *testing.T) {
	tests := []string{
		`<links xmlns:xlink="http://www.w3.org/1999/xlink"><l xlink:href="a.xml"/></links>`,
		`<a xmlns="urn:d"><b/></a>`,
		`<a xmlns="urn:d"><b xmlns=""/></a>`,
		`<a xmlns:p="urn:p"><p:b p:x="1"/></a>`,
	}
	for _, src := range tests {
		doc := roundTrip(t, src)
		_ = doc
	}
}

func TestSerializeSynthesizesPrefixes(t *testing.T) {
	// A programmatically built tree with namespaced attrs but no xmlns
	// declarations must still serialize to well-formed, reparseable XML
	// that preserves expanded names.
	e := NewElementNS("urn:space", "root")
	e.SetAttrNS("urn:attr", "kind", "v")
	child := NewElementNS("urn:space", "child")
	e.AppendChild(child)
	doc := NewDocument(e)

	out := doc.String()
	re, err := ParseString(out)
	if err != nil {
		t.Fatalf("reparse %q: %v", out, err)
	}
	if re.Root().Name.Space != "urn:space" {
		t.Errorf("root space = %q, want urn:space", re.Root().Name.Space)
	}
	if v, ok := re.Root().Attr("urn:attr", "kind"); !ok || v != "v" {
		t.Errorf("namespaced attr lost: %q %v in %s", v, ok, out)
	}
	if re.Root().FirstChildElement("child").Name.Space != "urn:space" {
		t.Errorf("child space lost in %s", out)
	}
}

func TestSerializeXMLPrefixedAttr(t *testing.T) {
	e := NewElement("p")
	e.SetAttrNS(XMLNamespace, "id", "guitar")
	out := OuterXML(e)
	if !strings.Contains(out, `xml:id="guitar"`) {
		t.Errorf("xml:id not serialized with reserved prefix: %s", out)
	}
	re, err := ParseString(out)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if v, _ := re.Root().Attr(XMLNamespace, "id"); v != "guitar" {
		t.Errorf("xml:id lost on reparse: %s", out)
	}
}

func TestIndentedOutput(t *testing.T) {
	doc := MustParseString(`<a><b><c/></b><d>text</d></a>`)
	out := doc.IndentedString()
	if !strings.HasPrefix(out, `<?xml version="1.0" encoding="UTF-8"?>`) {
		t.Errorf("missing declaration: %s", out)
	}
	if !strings.Contains(out, "\n  <b>") {
		t.Errorf("b not indented: %s", out)
	}
	if !strings.Contains(out, "<d>text</d>") {
		t.Errorf("text content must not be re-indented: %s", out)
	}
	// Indented output must still parse to an equivalent tree when
	// whitespace is trimmed.
	re, err := ParseWithOptions(strings.NewReader(out), ParseOptions{TrimWhitespace: true})
	if err != nil {
		t.Fatalf("reparse indented: %v", err)
	}
	if re.Root().FirstChildElement("d").Text() != "text" {
		t.Error("text lost through indent round-trip")
	}
}

func TestCDATASerialization(t *testing.T) {
	e := NewElement("script")
	e.AppendChild(&Text{Data: "if (a < b && c > d) {}", CData: true})
	out := OuterXML(e)
	if !strings.Contains(out, "<![CDATA[if (a < b && c > d) {}]]>") {
		t.Errorf("CDATA not emitted: %s", out)
	}
	re, err := ParseString(out)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if got := re.Root().Text(); got != "if (a < b && c > d) {}" {
		t.Errorf("CDATA content lost: %q", got)
	}
	// Embedded terminator must be split safely.
	e2 := NewElement("x")
	e2.AppendChild(&Text{Data: "a]]>b", CData: true})
	re2, err := ParseString(OuterXML(e2))
	if err != nil {
		t.Fatalf("reparse with ]]>: %v", err)
	}
	if got := re2.Root().Text(); got != "a]]>b" {
		t.Errorf("]]> handling lost data: %q", got)
	}
}

func TestEscapeCarriageReturnAndTab(t *testing.T) {
	e := NewElement("a")
	e.SetAttr("v", "line1\nline2\tend")
	e.AppendText("text\rwith cr")
	out := OuterXML(e)
	re, err := ParseString(out)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if got := re.Root().AttrValue("v"); got != "line1\nline2\tend" {
		t.Errorf("attr whitespace not preserved: %q (serialized %s)", got, out)
	}
	if got := re.Root().Text(); !strings.Contains(got, "\r") {
		t.Errorf("carriage return lost from text: %q (serialized %s)", got, out)
	}
}

// genName produces a safe XML local name from arbitrary fuzz input.
func genName(s string) string {
	var sb strings.Builder
	sb.WriteByte('n')
	for _, r := range s {
		if (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9') || r == '-' || r == '_' {
			sb.WriteRune(r)
		}
		if sb.Len() > 10 {
			break
		}
	}
	return sb.String()
}

// genText strips control characters that are not legal in XML 1.0.
func genText(s string) string {
	var sb strings.Builder
	for _, r := range s {
		if r == '\t' || r == '\n' || r == 0x20 || (r > 0x20 && r != 0xFFFE && r != 0xFFFF && (r < 0xD800 || r > 0xDFFF)) {
			sb.WriteRune(r)
		}
		if sb.Len() > 40 {
			break
		}
	}
	return sb.String()
}

// TestQuickRoundTrip property-tests that any tree built from generated
// names/attribute values/texts survives a serialize→parse→serialize cycle.
func TestQuickRoundTrip(t *testing.T) {
	f := func(names []string, attrVals []string, texts []string) bool {
		root := NewElement("root")
		cur := root
		for i, n := range names {
			child := NewElement(genName(n))
			if i < len(attrVals) {
				child.SetAttr("a", genText(attrVals[i]))
			}
			// An empty text node serializes as <x></x> but reparses to
			// the equivalent <x/>, so only append non-empty runs.
			if i < len(texts) {
				if txt := genText(texts[i]); txt != "" {
					child.AppendText(txt)
				}
			}
			cur.AppendChild(child)
			if i%2 == 0 {
				cur = child // grow depth on alternate steps
			}
		}
		doc := NewDocument(root)
		out := doc.String()
		re, err := ParseString(out)
		if err != nil {
			t.Logf("reparse error: %v for %q", err, out)
			return false
		}
		return re.String() == out
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickCloneEquivalence property-tests that Clone yields an identical
// serialization and a fully detached tree.
func TestQuickCloneEquivalence(t *testing.T) {
	f := func(names []string, texts []string) bool {
		root := NewElement("r")
		for i, n := range names {
			c := root.AddElement(genName(n))
			if i < len(texts) {
				c.AppendText(genText(texts[i]))
			}
		}
		doc := NewDocument(root)
		clone := doc.Clone()
		if clone.String() != doc.String() {
			return false
		}
		clone.Root().SetAttr("mut", "1")
		return doc.Root().AttrValue("mut") == ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
