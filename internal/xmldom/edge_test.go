package xmldom

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "guitar.xml")
	if err := os.WriteFile(path, []byte(`<painting id="guitar"/>`), 0o644); err != nil {
		t.Fatal(err)
	}
	doc, err := ParseFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if doc.BaseURI != path {
		t.Errorf("BaseURI = %q", doc.BaseURI)
	}
	if doc.Root().AttrValue("id") != "guitar" {
		t.Error("content wrong")
	}
	if _, err := ParseFile(filepath.Join(dir, "missing.xml")); err == nil {
		t.Error("missing file accepted")
	}
	// Malformed file.
	bad := filepath.Join(dir, "bad.xml")
	os.WriteFile(bad, []byte("<a><b>"), 0o644)
	if _, err := ParseFile(bad); err == nil {
		t.Error("malformed file accepted")
	}
}

func TestMustParseStringPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParseString should panic on bad input")
		}
	}()
	MustParseString("<a>")
}

func TestPrefixRebinding(t *testing.T) {
	// The same prefix bound to different URIs at different depths.
	const src = `<a xmlns:p="urn:one"><p:x/><b xmlns:p="urn:two"><p:y/></b></a>`
	doc := MustParseString(src)
	x := doc.Root().FirstChildElement("x")
	if x.Name.Space != "urn:one" {
		t.Errorf("x space = %q", x.Name.Space)
	}
	y := doc.Root().FirstChildElement("b").FirstChildElement("y")
	if y.Name.Space != "urn:two" {
		t.Errorf("y space = %q", y.Name.Space)
	}
	// Round trip preserves both.
	re := MustParseString(doc.String())
	if re.Root().FirstChildElement("b").FirstChildElement("y").Name.Space != "urn:two" {
		t.Errorf("rebinding lost on round trip: %s", doc.String())
	}
}

func TestDefaultNamespaceUndeclared(t *testing.T) {
	// An element with no namespace nested under a default-namespaced
	// parent must serialize with xmlns="".
	parent := NewElementNS("urn:d", "parent")
	parent.AppendChild(NewElement("bare"))
	doc := NewDocument(parent)
	out := doc.String()
	re, err := ParseString(out)
	if err != nil {
		t.Fatalf("reparse %q: %v", out, err)
	}
	bare := re.Root().FirstChildElement("bare")
	if bare == nil || bare.Name.Space != "" {
		t.Errorf("bare element gained a namespace: %s", out)
	}
}

func TestRemoveAllChildren(t *testing.T) {
	doc := MustParseString(`<a><b/><c/>text</a>`)
	root := doc.Root()
	kids := root.Children()
	root.RemoveAllChildren()
	if len(root.Children()) != 0 {
		t.Error("children remain")
	}
	for _, k := range kids {
		if k.ParentNode() != nil {
			t.Error("detached child still has parent")
		}
	}
	if doc.String() != "<a/>" {
		t.Errorf("serialization = %s", doc.String())
	}
}

func TestChildElementsNamed(t *testing.T) {
	doc := MustParseString(`<a><x/><y/><x/><z><x/></z></a>`)
	if got := len(doc.Root().ChildElementsNamed("x")); got != 2 {
		t.Errorf("direct x children = %d, want 2 (not descendants)", got)
	}
	if got := len(doc.Root().ChildElementsNamed("nope")); got != 0 {
		t.Errorf("missing name matched %d", got)
	}
}

func TestFirstChildElementWildcard(t *testing.T) {
	doc := MustParseString(`<a>text<b/><c/></a>`)
	if e := doc.Root().FirstChildElement("*"); e == nil || e.Name.Local != "b" {
		t.Errorf("wildcard first = %v", e)
	}
	if e := doc.Root().FirstChildElement("c"); e == nil || e.Name.Local != "c" {
		t.Errorf("named first = %v", e)
	}
	if e := doc.Root().FirstChildElement("zz"); e != nil {
		t.Error("missing name matched")
	}
}

func TestDescendantsEarlyStop(t *testing.T) {
	doc := MustParseString(`<a><b/><c/><d/></a>`)
	visited := 0
	doc.Root().Descendants(func(e *Element) bool {
		visited++
		return visited < 2
	})
	if visited != 2 {
		t.Errorf("visited = %d, want early stop at 2", visited)
	}
}

func TestCloneNodePanicsOnAttr(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("CloneNode(*Attr) should panic")
		}
	}()
	CloneNode(&Attr{})
}

func TestCompareDocOrderAcrossAttrs(t *testing.T) {
	doc := MustParseString(`<a x="1" y="2"><b/></a>`)
	x := doc.Root().AttrNode("", "x")
	y := doc.Root().AttrNode("", "y")
	if CompareDocOrder(x, y) != -1 {
		t.Error("attribute declaration order not respected")
	}
	if CompareDocOrder(y, x) != 1 {
		t.Error("reverse comparison wrong")
	}
	// Detached attribute sorts stably without panicking.
	loose := &Attr{Name: Name{Local: "z"}}
	_ = CompareDocOrder(loose, x)
}

func TestDocumentWithoutRootStringValue(t *testing.T) {
	d := &Document{}
	if d.StringValue() != "" {
		t.Error("empty document string-value should be empty")
	}
	if d.Root() != nil {
		t.Error("empty document has root")
	}
}

func TestElementTextVsStringValue(t *testing.T) {
	doc := MustParseString(`<a>  direct <b>nested</b> tail  </a>`)
	if got := doc.Root().Text(); got != "direct  tail" {
		t.Errorf("Text (immediate, trimmed) = %q", got)
	}
	if got := doc.Root().StringValue(); !strings.Contains(got, "nested") {
		t.Errorf("StringValue (recursive) = %q", got)
	}
}
