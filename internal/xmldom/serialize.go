package xmldom

import (
	"fmt"
	"io"
	"strings"
)

// WriteOptions control serialization.
type WriteOptions struct {
	// Indent, when non-empty, pretty-prints the tree using the string as
	// one indentation level. Mixed content (elements with text siblings)
	// is never re-indented, so data round-trips.
	Indent string
	// Declaration emits an <?xml version="1.0" encoding="UTF-8"?> header.
	Declaration bool
}

// nsScope tracks in-scope prefix bindings during serialization.
type nsScope struct {
	parent       *nsScope
	prefixToURI  map[string]string
	uriToPrefix  map[string]string
	defaultSpace string
	hasDefault   bool
}

func newScope(parent *nsScope) *nsScope {
	return &nsScope{
		parent:      parent,
		prefixToURI: map[string]string{},
		uriToPrefix: map[string]string{},
	}
}

func (s *nsScope) lookupPrefix(uri string) (string, bool) {
	for sc := s; sc != nil; sc = sc.parent {
		if p, ok := sc.uriToPrefix[uri]; ok {
			// A nearer scope may have rebound the prefix; confirm.
			if u, ok2 := s.lookupURI(p); ok2 && u == uri {
				return p, true
			}
		}
	}
	return "", false
}

func (s *nsScope) lookupURI(prefix string) (string, bool) {
	for sc := s; sc != nil; sc = sc.parent {
		if u, ok := sc.prefixToURI[prefix]; ok {
			return u, true
		}
	}
	return "", false
}

func (s *nsScope) defaultNS() string {
	for sc := s; sc != nil; sc = sc.parent {
		if sc.hasDefault {
			return sc.defaultSpace
		}
	}
	return ""
}

func (s *nsScope) bind(prefix, uri string) {
	if prefix == "" {
		s.hasDefault = true
		s.defaultSpace = uri
		return
	}
	s.prefixToURI[prefix] = uri
	s.uriToPrefix[uri] = prefix
}

type serializer struct {
	w       io.Writer
	opts    WriteOptions
	err     error
	genSeq  int
	written int64
}

func (s *serializer) writeString(str string) {
	if s.err != nil {
		return
	}
	n, err := io.WriteString(s.w, str)
	s.written += int64(n)
	if err != nil {
		s.err = err
	}
}

// Write serializes the document to w.
func (d *Document) Write(w io.Writer, opts WriteOptions) error {
	s := &serializer{w: w, opts: opts}
	if opts.Declaration {
		s.writeString(`<?xml version="1.0" encoding="UTF-8"?>`)
		if opts.Indent != "" {
			s.writeString("\n")
		}
	}
	scope := newScope(nil)
	scope.bind("xml", XMLNamespace)
	for i, c := range d.children {
		if opts.Indent != "" && i > 0 {
			s.writeString("\n")
		}
		s.writeNode(c, scope, 0)
	}
	if opts.Indent != "" {
		s.writeString("\n")
	}
	return s.err
}

// String serializes the document compactly (no declaration, no indent).
func (d *Document) String() string {
	var sb strings.Builder
	_ = d.Write(&sb, WriteOptions{})
	return sb.String()
}

// IndentedString serializes the document pretty-printed with two-space
// indentation and an XML declaration.
func (d *Document) IndentedString() string {
	var sb strings.Builder
	_ = d.Write(&sb, WriteOptions{Indent: "  ", Declaration: true})
	return sb.String()
}

// OuterXML serializes a single element subtree compactly.
func OuterXML(e *Element) string {
	var sb strings.Builder
	s := &serializer{w: &sb, opts: WriteOptions{}}
	scope := newScope(nil)
	scope.bind("xml", XMLNamespace)
	s.writeNode(e, scope, 0)
	return sb.String()
}

// contentShape reports whether the element has element children and whether
// it has non-whitespace text children (mixed content).
func contentShape(e *Element) (hasElem, hasText bool) {
	for _, c := range e.children {
		switch n := c.(type) {
		case *Element:
			hasElem = true
		case *Text:
			if strings.TrimSpace(n.Data) != "" {
				hasText = true
			}
		}
	}
	return
}

func (s *serializer) writeNode(n Node, scope *nsScope, depth int) {
	switch v := n.(type) {
	case *Element:
		s.writeElement(v, scope, depth)
	case *Text:
		if v.CData {
			s.writeString("<![CDATA[")
			s.writeString(strings.ReplaceAll(v.Data, "]]>", "]]]]><![CDATA[>"))
			s.writeString("]]>")
		} else {
			s.writeString(escapeText(v.Data))
		}
	case *Comment:
		s.writeString("<!--")
		s.writeString(v.Data)
		s.writeString("-->")
	case *ProcInst:
		s.writeString("<?")
		s.writeString(v.Target)
		if v.Data != "" {
			s.writeString(" ")
			s.writeString(v.Data)
		}
		s.writeString("?>")
	}
}

func (s *serializer) writeElement(e *Element, parent *nsScope, depth int) {
	scope := newScope(parent)

	// Collect declarations already present as attributes.
	type attrOut struct{ name, value string }
	var extraDecls []attrOut
	var plainAttrs []*Attr
	for _, a := range e.attrs {
		switch {
		case a.Name.Space == "" && a.Name.Local == "xmlns":
			scope.bind("", a.Value)
			extraDecls = append(extraDecls, attrOut{"xmlns", a.Value})
		case a.Name.Space == "xmlns":
			scope.bind(a.Name.Local, a.Value)
			extraDecls = append(extraDecls, attrOut{"xmlns:" + a.Name.Local, a.Value})
		default:
			plainAttrs = append(plainAttrs, a)
		}
	}

	// Resolve the element's own name.
	var tag string
	switch {
	case e.Name.Space == "":
		if scope.defaultNS() != "" {
			scope.bind("", "")
			extraDecls = append(extraDecls, attrOut{"xmlns", ""})
		}
		tag = e.Name.Local
	case scope.defaultNS() == e.Name.Space:
		tag = e.Name.Local
	default:
		if p, ok := scope.lookupPrefix(e.Name.Space); ok && p != "" {
			tag = p + ":" + e.Name.Local
		} else {
			// No prefix in scope: declare the element's namespace as the
			// default so descendants in the same namespace stay clean.
			scope.bind("", e.Name.Space)
			extraDecls = append(extraDecls, attrOut{"xmlns", e.Name.Space})
			tag = e.Name.Local
		}
	}

	// Resolve attribute names, synthesizing prefixes where needed.
	var attrsOut []attrOut
	for _, a := range plainAttrs {
		switch {
		case a.Name.Space == "":
			attrsOut = append(attrsOut, attrOut{a.Name.Local, a.Value})
		case a.Name.Space == XMLNamespace || a.Name.Space == "xml":
			attrsOut = append(attrsOut, attrOut{"xml:" + a.Name.Local, a.Value})
		default:
			p, ok := scope.lookupPrefix(a.Name.Space)
			if !ok || p == "" {
				p = s.freshPrefix(scope)
				scope.bind(p, a.Name.Space)
				extraDecls = append(extraDecls, attrOut{"xmlns:" + p, a.Name.Space})
			}
			attrsOut = append(attrsOut, attrOut{p + ":" + a.Name.Local, a.Value})
		}
	}

	s.writeString("<")
	s.writeString(tag)
	for _, d := range extraDecls {
		s.writeString(" ")
		s.writeString(d.name)
		s.writeString(`="`)
		s.writeString(escapeAttr(d.value))
		s.writeString(`"`)
	}
	for _, a := range attrsOut {
		s.writeString(" ")
		s.writeString(a.name)
		s.writeString(`="`)
		s.writeString(escapeAttr(a.value))
		s.writeString(`"`)
	}

	if len(e.children) == 0 {
		s.writeString("/>")
		return
	}
	s.writeString(">")

	hasElem, hasText := contentShape(e)
	pretty := s.opts.Indent != "" && hasElem && !hasText
	for _, c := range e.children {
		if pretty {
			if t, ok := c.(*Text); ok && strings.TrimSpace(t.Data) == "" {
				continue // replaced by generated indentation
			}
			s.writeString("\n")
			s.writeString(strings.Repeat(s.opts.Indent, depth+1))
		}
		s.writeNode(c, scope, depth+1)
	}
	if pretty {
		s.writeString("\n")
		s.writeString(strings.Repeat(s.opts.Indent, depth))
	}
	s.writeString("</")
	s.writeString(tag)
	s.writeString(">")
}

func (s *serializer) freshPrefix(scope *nsScope) string {
	for {
		s.genSeq++
		p := fmt.Sprintf("ns%d", s.genSeq)
		if _, taken := scope.lookupURI(p); !taken {
			return p
		}
	}
}

func escapeText(s string) string {
	var sb strings.Builder
	for _, r := range s {
		switch r {
		case '&':
			sb.WriteString("&amp;")
		case '<':
			sb.WriteString("&lt;")
		case '>':
			sb.WriteString("&gt;")
		case '\r':
			sb.WriteString("&#xD;")
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

func escapeAttr(s string) string {
	var sb strings.Builder
	for _, r := range s {
		switch r {
		case '&':
			sb.WriteString("&amp;")
		case '<':
			sb.WriteString("&lt;")
		case '>':
			sb.WriteString("&gt;")
		case '"':
			sb.WriteString("&quot;")
		case '\n':
			sb.WriteString("&#xA;")
		case '\r':
			sb.WriteString("&#xD;")
		case '\t':
			sb.WriteString("&#x9;")
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}
