package xmldom

import (
	"encoding/xml"
	"fmt"
	"io"
	"os"
	"strings"
)

// ParseOptions control document parsing.
type ParseOptions struct {
	// TrimWhitespace drops text nodes that consist entirely of XML
	// whitespace. Useful when reading hand-indented configuration
	// documents where layout whitespace is not data.
	TrimWhitespace bool
	// BaseURI is recorded on the resulting document for reference
	// resolution.
	BaseURI string
}

// Parse reads a well-formed XML document from r with default options.
func Parse(r io.Reader) (*Document, error) {
	return ParseWithOptions(r, ParseOptions{})
}

// ParseString parses a document held in a string.
func ParseString(s string) (*Document, error) {
	return Parse(strings.NewReader(s))
}

// MustParseString parses a document or panics; intended for tests and
// package-level fixtures whose well-formedness is statically known.
func MustParseString(s string) *Document {
	d, err := ParseString(s)
	if err != nil {
		panic(fmt.Sprintf("xmldom: MustParseString: %v", err))
	}
	return d
}

// ParseFile reads and parses the file at path, recording it as the
// document's base URI.
func ParseFile(path string) (*Document, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("xmldom: open %s: %w", path, err)
	}
	defer f.Close()
	doc, err := ParseWithOptions(f, ParseOptions{BaseURI: path})
	if err != nil {
		return nil, fmt.Errorf("xmldom: parse %s: %w", path, err)
	}
	return doc, nil
}

// ParseWithOptions reads a well-formed XML document from r.
func ParseWithOptions(r io.Reader, opts ParseOptions) (*Document, error) {
	dec := xml.NewDecoder(r)
	dec.Strict = true

	doc := &Document{BaseURI: opts.BaseURI}
	var stack []*Element

	appendNode := func(n Node) {
		if len(stack) == 0 {
			setParent(n, doc)
			adoptTree(n, doc)
			doc.children = append(doc.children, n)
			return
		}
		stack[len(stack)-1].AppendChild(n)
	}

	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmldom: offset %d: %w", dec.InputOffset(), err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			e := &Element{Name: Name{Space: t.Name.Space, Local: t.Name.Local}}
			for _, a := range t.Attr {
				e.attrs = append(e.attrs, &Attr{
					Name:  Name{Space: a.Name.Space, Local: a.Name.Local},
					Value: a.Value,
					owner: e,
				})
			}
			if len(stack) == 0 && doc.Root() != nil {
				return nil, fmt.Errorf("xmldom: multiple root elements (second is <%s>)", t.Name.Local)
			}
			appendNode(e)
			stack = append(stack, e)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmldom: unbalanced end element </%s>", t.Name.Local)
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			data := string(t)
			if len(stack) == 0 {
				// Whitespace between top-level constructs is not
				// significant; anything else is malformed and the
				// decoder reports it, so just skip.
				continue
			}
			if opts.TrimWhitespace && strings.TrimSpace(data) == "" {
				continue
			}
			// Merge adjacent runs so entity boundaries don't split
			// text nodes.
			parent := stack[len(stack)-1]
			if n := len(parent.children); n > 0 {
				if prev, ok := parent.children[n-1].(*Text); ok {
					prev.Data += data
					continue
				}
			}
			appendNode(NewText(data))
		case xml.Comment:
			appendNode(&Comment{Data: string(t)})
		case xml.ProcInst:
			if t.Target == "xml" {
				continue // the XML declaration is not part of the tree
			}
			appendNode(&ProcInst{Target: t.Target, Data: string(t.Inst)})
		case xml.Directive:
			// DOCTYPE and friends are accepted but not modeled.
		}
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("xmldom: unexpected EOF inside <%s>", stack[len(stack)-1].Name.Local)
	}
	if doc.Root() == nil {
		return nil, fmt.Errorf("xmldom: document has no root element")
	}
	return doc, nil
}
