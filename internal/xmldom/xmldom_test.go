package xmldom

import (
	"strings"
	"testing"
)

func TestParseSimpleDocument(t *testing.T) {
	doc, err := ParseString(`<museum><painter id="picasso"><name>Pablo Picasso</name></painter></museum>`)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	root := doc.Root()
	if root == nil {
		t.Fatal("no root element")
	}
	if root.Name.Local != "museum" {
		t.Errorf("root name = %q, want museum", root.Name.Local)
	}
	painter := root.FirstChildElement("painter")
	if painter == nil {
		t.Fatal("painter element missing")
	}
	if got := painter.AttrValue("id"); got != "picasso" {
		t.Errorf("painter id = %q, want picasso", got)
	}
	name := painter.FirstChildElement("name")
	if name == nil || name.Text() != "Pablo Picasso" {
		t.Errorf("name text = %v, want Pablo Picasso", name)
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name  string
		input string
	}{
		{"empty", ""},
		{"unbalanced", "<a><b></a>"},
		{"two roots", "<a/><b/>"},
		{"no root", "<!-- only a comment -->"},
		{"garbage", "not xml at all <"},
		{"unclosed", "<a><b>"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParseString(tt.input); err == nil {
				t.Errorf("ParseString(%q) succeeded, want error", tt.input)
			}
		})
	}
}

func TestNamespaceResolution(t *testing.T) {
	const src = `<links xmlns:xlink="http://www.w3.org/1999/xlink">` +
		`<link xlink:type="simple" xlink:href="guitar.xml"/></links>`
	doc, err := ParseString(src)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	link := doc.Root().FirstChildElement("link")
	if link == nil {
		t.Fatal("link element missing")
	}
	v, ok := link.Attr("http://www.w3.org/1999/xlink", "type")
	if !ok || v != "simple" {
		t.Errorf("xlink:type = %q, %v; want simple, true", v, ok)
	}
	if href, _ := link.Attr("http://www.w3.org/1999/xlink", "href"); href != "guitar.xml" {
		t.Errorf("xlink:href = %q, want guitar.xml", href)
	}
}

func TestDefaultNamespace(t *testing.T) {
	doc := MustParseString(`<root xmlns="urn:example"><child/></root>`)
	if got := doc.Root().Name.Space; got != "urn:example" {
		t.Errorf("root space = %q, want urn:example", got)
	}
	if got := doc.Root().FirstChildElement("child").Name.Space; got != "urn:example" {
		t.Errorf("child space = %q, want urn:example", got)
	}
}

func TestTextMergingAcrossEntities(t *testing.T) {
	doc := MustParseString(`<p>Les Demoiselles d&apos;Avignon &amp; Guernica</p>`)
	var textNodes int
	for _, c := range doc.Root().Children() {
		if _, ok := c.(*Text); ok {
			textNodes++
		}
	}
	if textNodes != 1 {
		t.Errorf("text node count = %d, want 1 (entity-split runs should merge)", textNodes)
	}
	if got := doc.Root().Text(); got != "Les Demoiselles d'Avignon & Guernica" {
		t.Errorf("text = %q", got)
	}
}

func TestTrimWhitespaceOption(t *testing.T) {
	const src = "<a>\n  <b/>\n  <c/>\n</a>"
	plain := MustParseString(src)
	if got := len(plain.Root().Children()); got != 5 {
		t.Errorf("default parse children = %d, want 5 (ws text preserved)", got)
	}
	trimmed, err := ParseWithOptions(strings.NewReader(src), ParseOptions{TrimWhitespace: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(trimmed.Root().Children()); got != 2 {
		t.Errorf("trimmed parse children = %d, want 2", got)
	}
}

func TestStringValue(t *testing.T) {
	doc := MustParseString(`<a>one<b>two<c>three</c></b><!-- skip -->four</a>`)
	if got := doc.Root().StringValue(); got != "onetwothreefour" {
		t.Errorf("element string-value = %q", got)
	}
	if got := doc.StringValue(); got != "onetwothreefour" {
		t.Errorf("document string-value = %q", got)
	}
}

func TestAttrOperations(t *testing.T) {
	e := NewElement("painting")
	e.SetAttr("title", "Guitar").SetAttr("year", "1913")
	if got := e.AttrValue("title"); got != "Guitar" {
		t.Errorf("title = %q", got)
	}
	e.SetAttr("title", "Guernica")
	if got := e.AttrValue("title"); got != "Guernica" {
		t.Errorf("after overwrite title = %q", got)
	}
	if len(e.Attrs()) != 2 {
		t.Errorf("attr count = %d, want 2", len(e.Attrs()))
	}
	if !e.RemoveAttr("", "year") {
		t.Error("RemoveAttr(year) = false, want true")
	}
	if e.RemoveAttr("", "year") {
		t.Error("second RemoveAttr(year) = true, want false")
	}
	if _, ok := e.Attr("", "year"); ok {
		t.Error("year still present after removal")
	}
}

func TestMutations(t *testing.T) {
	root := NewElement("root")
	doc := NewDocument(root)
	a := root.AddElement("a")
	b := root.AddElement("b")
	if got := len(root.ChildElements()); got != 2 {
		t.Fatalf("children = %d, want 2", got)
	}
	if a.Document() != doc {
		t.Error("child a not adopted into document")
	}
	c := NewElement("c")
	root.InsertChildAt(1, c)
	names := []string{}
	for _, e := range root.ChildElements() {
		names = append(names, e.Name.Local)
	}
	if strings.Join(names, ",") != "a,c,b" {
		t.Errorf("order after insert = %v", names)
	}
	if !root.RemoveChild(c) {
		t.Error("RemoveChild(c) = false")
	}
	if c.ParentNode() != nil {
		t.Error("removed child still has parent")
	}
	if root.RemoveChild(c) {
		t.Error("second RemoveChild(c) = true")
	}
	_ = b
}

func TestInsertChildAtClamps(t *testing.T) {
	root := NewElement("root")
	root.InsertChildAt(-5, NewElement("first"))
	root.InsertChildAt(99, NewElement("last"))
	els := root.ChildElements()
	if len(els) != 2 || els[0].Name.Local != "first" || els[1].Name.Local != "last" {
		t.Errorf("clamped insert order wrong: %v", els)
	}
}

func TestClone(t *testing.T) {
	doc := MustParseString(`<a x="1"><b>text</b><!--c--></a>`)
	clone := doc.Clone()
	if clone.String() != doc.String() {
		t.Errorf("clone serialization differs:\n%s\n%s", clone.String(), doc.String())
	}
	// Mutating the clone must not affect the original.
	clone.Root().SetAttr("x", "2")
	clone.Root().FirstChildElement("b").AppendText("!")
	if doc.Root().AttrValue("x") != "1" {
		t.Error("clone mutation leaked into original attr")
	}
	if doc.Root().FirstChildElement("b").Text() != "text" {
		t.Error("clone mutation leaked into original text")
	}
}

func TestGetElementByID(t *testing.T) {
	doc := MustParseString(`<museum><painting id="guitar"/><painting xml:id="guernica"/></museum>`)
	if e := doc.GetElementByID("guitar"); e == nil || e.Name.Local != "painting" {
		t.Error("id lookup failed for plain id attribute")
	}
	if e := doc.GetElementByID("guernica"); e == nil {
		t.Error("id lookup failed for xml:id attribute")
	}
	if e := doc.GetElementByID("missing"); e != nil {
		t.Error("lookup of missing id returned element")
	}
	if e := doc.GetElementByID(""); e != nil {
		t.Error("lookup of empty id returned element")
	}
}

func TestDocumentOrder(t *testing.T) {
	doc := MustParseString(`<a q="0"><b><c/></b><d/></a>`)
	root := doc.Root()
	b := root.FirstChildElement("b")
	c := b.FirstChildElement("c")
	d := root.FirstChildElement("d")
	attr := root.AttrNode("", "q")

	if CompareDocOrder(root, b) != -1 {
		t.Error("root should precede b")
	}
	if CompareDocOrder(b, c) != -1 {
		t.Error("b should precede c")
	}
	if CompareDocOrder(c, d) != -1 {
		t.Error("c should precede d (pre-order)")
	}
	if CompareDocOrder(d, b) != 1 {
		t.Error("d should follow b")
	}
	if CompareDocOrder(b, b) != 0 {
		t.Error("node equals itself")
	}
	// Attributes come after their element but before its children.
	if CompareDocOrder(root, attr) != -1 {
		t.Error("element should precede its attribute")
	}
	if CompareDocOrder(attr, b) != -1 {
		t.Error("attribute should precede element children")
	}
}

func TestPathAndAncestors(t *testing.T) {
	doc := MustParseString(`<museum><painter><painting/></painter></museum>`)
	p := doc.Root().FirstChildElement("painter").FirstChildElement("painting")
	if got := p.Path(); got != "museum/painter/painting" {
		t.Errorf("Path = %q", got)
	}
	anc := p.Ancestors()
	if len(anc) != 2 || anc[0].Name.Local != "painter" || anc[1].Name.Local != "museum" {
		t.Errorf("Ancestors = %v", anc)
	}
}

func TestSetRootReplaces(t *testing.T) {
	doc := NewDocument(NewElement("old"))
	doc.SetRoot(NewElement("new"))
	if doc.Root().Name.Local != "new" {
		t.Errorf("root = %q, want new", doc.Root().Name.Local)
	}
	count := 0
	for _, c := range doc.Children() {
		if _, ok := c.(*Element); ok {
			count++
		}
	}
	if count != 1 {
		t.Errorf("document has %d element children, want 1", count)
	}
}

func TestNodeTypeString(t *testing.T) {
	types := map[NodeType]string{
		DocumentNode:  "document",
		ElementNode:   "element",
		TextNode:      "text",
		CommentNode:   "comment",
		ProcInstNode:  "processing-instruction",
		AttributeNode: "attribute",
		NodeType(99):  "unknown",
	}
	for ty, want := range types {
		if got := ty.String(); got != want {
			t.Errorf("NodeType(%d).String() = %q, want %q", ty, got, want)
		}
	}
}

func TestNameString(t *testing.T) {
	if got := (Name{Local: "a"}).String(); got != "a" {
		t.Errorf("plain name = %q", got)
	}
	if got := (Name{Space: "urn:x", Local: "a"}).String(); got != "{urn:x}a" {
		t.Errorf("clark name = %q", got)
	}
}

func TestProcInstAndComment(t *testing.T) {
	doc := MustParseString(`<?xml version="1.0"?><?pi data?><!--top--><root><?inner stuff?></root>`)
	var pis, comments int
	for _, c := range doc.Children() {
		switch c.(type) {
		case *ProcInst:
			pis++
		case *Comment:
			comments++
		}
	}
	if pis != 1 || comments != 1 {
		t.Errorf("top-level pis=%d comments=%d, want 1,1 (xml decl excluded)", pis, comments)
	}
	inner := doc.Root().Children()
	if len(inner) != 1 {
		t.Fatalf("root children = %d, want 1", len(inner))
	}
	pi, ok := inner[0].(*ProcInst)
	if !ok || pi.Target != "inner" || pi.Data != "stuff" {
		t.Errorf("inner PI = %#v", inner[0])
	}
}
