package xmldom

import (
	"strings"
)

// NodeType identifies the concrete kind of a Node.
type NodeType int

// Node kinds, mirroring the XPath 1.0 data model.
const (
	DocumentNode NodeType = iota + 1
	ElementNode
	TextNode
	CommentNode
	ProcInstNode
	AttributeNode
)

// String returns a human-readable name for the node type.
func (t NodeType) String() string {
	switch t {
	case DocumentNode:
		return "document"
	case ElementNode:
		return "element"
	case TextNode:
		return "text"
	case CommentNode:
		return "comment"
	case ProcInstNode:
		return "processing-instruction"
	case AttributeNode:
		return "attribute"
	default:
		return "unknown"
	}
}

// Name is an expanded XML name: a namespace URI plus a local part.
// A zero Space means the name is in no namespace.
type Name struct {
	Space string // namespace URI, not prefix
	Local string
}

// String renders the name in Clark notation ({uri}local) when namespaced.
func (n Name) String() string {
	if n.Space == "" {
		return n.Local
	}
	return "{" + n.Space + "}" + n.Local
}

// Node is implemented by every member of a document tree.
type Node interface {
	// Type reports the concrete kind of the node.
	Type() NodeType
	// ParentNode returns the node's parent, or nil for a Document or a
	// detached node. An attribute's parent is its owning element.
	ParentNode() Node
	// StringValue returns the XPath 1.0 string-value of the node.
	StringValue() string
	// Document returns the owning document, or nil for detached trees.
	Document() *Document
}

// Document is the root of a parsed tree. Its children are the top-level
// comments and processing instructions plus exactly one root element.
type Document struct {
	// BaseURI records where the document was loaded from, when known.
	// XLink href resolution uses it to absolutize relative references.
	BaseURI string

	children []Node
}

// Type implements Node.
func (d *Document) Type() NodeType { return DocumentNode }

// ParentNode implements Node; a document has no parent.
func (d *Document) ParentNode() Node { return nil }

// Document implements Node.
func (d *Document) Document() *Document { return d }

// StringValue returns the string-value of the root element, per XPath.
func (d *Document) StringValue() string {
	if r := d.Root(); r != nil {
		return r.StringValue()
	}
	return ""
}

// Root returns the document element, or nil if the document is empty.
func (d *Document) Root() *Element {
	for _, c := range d.children {
		if e, ok := c.(*Element); ok {
			return e
		}
	}
	return nil
}

// Children returns the top-level nodes in document order.
func (d *Document) Children() []Node { return d.children }

// SetRoot replaces the document element (installing one if absent).
func (d *Document) SetRoot(e *Element) {
	for i, c := range d.children {
		if _, ok := c.(*Element); ok {
			d.children[i] = e
			e.parent = d
			adoptTree(e, d)
			return
		}
	}
	d.children = append(d.children, e)
	e.parent = d
	adoptTree(e, d)
}

// Element is an XML element: a name, attribute nodes and ordered children.
type Element struct {
	Name Name

	attrs    []*Attr
	children []Node
	parent   Node // *Element or *Document
	doc      *Document
}

// NewElement returns a detached element with the given local name.
func NewElement(local string) *Element {
	return &Element{Name: Name{Local: local}}
}

// NewElementNS returns a detached element with a namespaced name.
func NewElementNS(space, local string) *Element {
	return &Element{Name: Name{Space: space, Local: local}}
}

// Type implements Node.
func (e *Element) Type() NodeType { return ElementNode }

// ParentNode implements Node.
func (e *Element) ParentNode() Node { return e.parent }

// Document implements Node.
func (e *Element) Document() *Document { return e.doc }

// StringValue concatenates the data of all descendant text nodes.
func (e *Element) StringValue() string {
	var sb strings.Builder
	e.appendText(&sb)
	return sb.String()
}

func (e *Element) appendText(sb *strings.Builder) {
	for _, c := range e.children {
		switch n := c.(type) {
		case *Text:
			sb.WriteString(n.Data)
		case *Element:
			n.appendText(sb)
		}
	}
}

// Parent returns the parent element, or nil when the element is the root or
// detached.
func (e *Element) Parent() *Element {
	p, _ := e.parent.(*Element)
	return p
}

// Children returns the element's child nodes in document order.
func (e *Element) Children() []Node { return e.children }

// Attrs returns the element's attribute nodes in declaration order.
func (e *Element) Attrs() []*Attr { return e.attrs }

// Attr looks up an attribute by expanded name and reports whether it exists.
func (e *Element) Attr(space, local string) (string, bool) {
	for _, a := range e.attrs {
		if a.Name.Space == space && a.Name.Local == local {
			return a.Value, true
		}
	}
	return "", false
}

// AttrValue returns the value of the named no-namespace attribute, or "".
func (e *Element) AttrValue(local string) string {
	v, _ := e.Attr("", local)
	return v
}

// AttrNode returns the attribute node with the given expanded name, or nil.
func (e *Element) AttrNode(space, local string) *Attr {
	for _, a := range e.attrs {
		if a.Name.Space == space && a.Name.Local == local {
			return a
		}
	}
	return nil
}

// SetAttr sets (or replaces) a no-namespace attribute and returns e to allow
// call chaining while building trees.
func (e *Element) SetAttr(local, value string) *Element {
	return e.SetAttrNS("", local, value)
}

// SetAttrNS sets (or replaces) a namespaced attribute.
func (e *Element) SetAttrNS(space, local, value string) *Element {
	for _, a := range e.attrs {
		if a.Name.Space == space && a.Name.Local == local {
			a.Value = value
			return e
		}
	}
	e.attrs = append(e.attrs, &Attr{Name: Name{Space: space, Local: local}, Value: value, owner: e})
	return e
}

// RemoveAttr deletes the attribute with the given expanded name, reporting
// whether it was present.
func (e *Element) RemoveAttr(space, local string) bool {
	for i, a := range e.attrs {
		if a.Name.Space == space && a.Name.Local == local {
			a.owner = nil
			e.attrs = append(e.attrs[:i], e.attrs[i+1:]...)
			return true
		}
	}
	return false
}

// ChildElements returns the element children in document order.
func (e *Element) ChildElements() []*Element {
	var out []*Element
	for _, c := range e.children {
		if ce, ok := c.(*Element); ok {
			out = append(out, ce)
		}
	}
	return out
}

// ChildElementsNamed returns child elements whose local name matches,
// regardless of namespace.
func (e *Element) ChildElementsNamed(local string) []*Element {
	var out []*Element
	for _, c := range e.children {
		if ce, ok := c.(*Element); ok && ce.Name.Local == local {
			out = append(out, ce)
		}
	}
	return out
}

// FirstChildElement returns the first child element with the given local
// name, or the first child element of any name when local is "*", or nil.
func (e *Element) FirstChildElement(local string) *Element {
	for _, c := range e.children {
		if ce, ok := c.(*Element); ok && (local == "*" || ce.Name.Local == local) {
			return ce
		}
	}
	return nil
}

// Text returns the concatenated data of the element's immediate text
// children (not descendants), trimmed of surrounding whitespace.
func (e *Element) Text() string {
	var sb strings.Builder
	for _, c := range e.children {
		if t, ok := c.(*Text); ok {
			sb.WriteString(t.Data)
		}
	}
	return strings.TrimSpace(sb.String())
}

// Descendants calls fn for every descendant element in document order,
// stopping early if fn returns false.
func (e *Element) Descendants(fn func(*Element) bool) {
	for _, c := range e.children {
		if ce, ok := c.(*Element); ok {
			if !fn(ce) {
				return
			}
			ce.Descendants(fn)
		}
	}
}

// Ancestors returns the chain of ancestor elements, nearest first.
func (e *Element) Ancestors() []*Element {
	var out []*Element
	for p := e.Parent(); p != nil; p = p.Parent() {
		out = append(out, p)
	}
	return out
}

// Path returns a slash-separated local-name path from the root to e, useful
// in error messages (e.g. "museum/painter/painting").
func (e *Element) Path() string {
	names := []string{e.Name.Local}
	for p := e.Parent(); p != nil; p = p.Parent() {
		names = append(names, p.Name.Local)
	}
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	return strings.Join(names, "/")
}

// Text is a run of character data.
type Text struct {
	Data string
	// CData requests that serialization write the run as a CDATA section.
	// (The tokenizer does not distinguish CDATA on input, so the flag is
	// meaningful for programmatically built trees.)
	CData bool

	parent Node
	doc    *Document
}

// NewText returns a detached text node.
func NewText(data string) *Text { return &Text{Data: data} }

// Type implements Node.
func (t *Text) Type() NodeType { return TextNode }

// ParentNode implements Node.
func (t *Text) ParentNode() Node { return t.parent }

// Document implements Node.
func (t *Text) Document() *Document { return t.doc }

// StringValue returns the character data.
func (t *Text) StringValue() string { return t.Data }

// Comment is an XML comment.
type Comment struct {
	Data string

	parent Node
	doc    *Document
}

// Type implements Node.
func (c *Comment) Type() NodeType { return CommentNode }

// ParentNode implements Node.
func (c *Comment) ParentNode() Node { return c.parent }

// Document implements Node.
func (c *Comment) Document() *Document { return c.doc }

// StringValue returns the comment text.
func (c *Comment) StringValue() string { return c.Data }

// ProcInst is a processing instruction such as <?xml-stylesheet ...?>.
type ProcInst struct {
	Target string
	Data   string

	parent Node
	doc    *Document
}

// Type implements Node.
func (p *ProcInst) Type() NodeType { return ProcInstNode }

// ParentNode implements Node.
func (p *ProcInst) ParentNode() Node { return p.parent }

// Document implements Node.
func (p *ProcInst) Document() *Document { return p.doc }

// StringValue returns the instruction data.
func (p *ProcInst) StringValue() string { return p.Data }

// Attr is an attribute node. Attributes participate in XPath node-sets but
// are not children of their owning element.
type Attr struct {
	Name  Name
	Value string

	owner *Element
}

// Type implements Node.
func (a *Attr) Type() NodeType { return AttributeNode }

// ParentNode implements Node; per XPath the owning element is the parent.
func (a *Attr) ParentNode() Node {
	if a.owner == nil {
		return nil
	}
	return a.owner
}

// Owner returns the element the attribute belongs to, or nil if detached.
func (a *Attr) Owner() *Element { return a.owner }

// Document implements Node.
func (a *Attr) Document() *Document {
	if a.owner == nil {
		return nil
	}
	return a.owner.doc
}

// StringValue returns the attribute value.
func (a *Attr) StringValue() string { return a.Value }

// Verify that all concrete types satisfy Node.
var (
	_ Node = (*Document)(nil)
	_ Node = (*Element)(nil)
	_ Node = (*Text)(nil)
	_ Node = (*Comment)(nil)
	_ Node = (*ProcInst)(nil)
	_ Node = (*Attr)(nil)
)
