// Package lift implements the migration path from the tangled world to
// the separated one: it parses a hand-written HTML site (navigation
// anchors embedded in every page, as in the paper's Figures 3–4), extracts
// the navigational aspect into an XLink linkbase, and returns the pages
// with their navigation stripped — pure content, ready for re-weaving.
//
// This is the practical answer to "we already have a tangled site": run
// lift once, keep maintaining navigation in links.xml from then on.
package lift

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/navigation"
	"repro/internal/xmldom"
)

// Result is the outcome of lifting a site.
type Result struct {
	// Linkbase is the extracted links.xml document.
	Linkbase *xmldom.Document
	// Contexts are the recovered navigation contexts.
	Contexts []*navigation.LinkbaseContext
	// Pages maps each member page's path to its stripped content
	// (hub pages are dropped entirely: they are pure navigation).
	Pages map[string]string
	// Stats summarizes the extraction.
	Stats Stats
}

// Stats counts what lifting found.
type Stats struct {
	// PagesIn is the number of input pages.
	PagesIn int
	// HubPages is how many were pure-navigation index pages.
	HubPages int
	// AnchorsLifted is the number of navigation anchors moved into the
	// linkbase.
	AnchorsLifted int
	// Contexts is the number of recovered contexts.
	Contexts int
}

// anchor is one extracted navigation anchor.
type anchor struct {
	label  string // anchor text
	target string // node id the href points at
}

// pageInfo is one parsed member page.
type pageInfo struct {
	nodeID   string
	title    string
	anchors  []anchor
	stripped string
}

// contextAccum accumulates one directory's pages into a context.
type contextAccum struct {
	name    string
	hub     []anchor // hub page anchors in order, nil when no hub page
	members map[string]*pageInfo
	order   []string // member ids in hub order (or discovered order)
}

// Site lifts a tangled site (path -> HTML) into a linkbase plus stripped
// pages. Pages must be well-formed XML-ish HTML, as produced by the
// tangled generator or equivalent hand-written markup.
func Site(pages map[string]string) (*Result, error) {
	if len(pages) == 0 {
		return nil, fmt.Errorf("lift: empty site")
	}
	accums := map[string]*contextAccum{}

	paths := make([]string, 0, len(pages))
	for p := range pages {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	result := &Result{Pages: map[string]string{}}
	result.Stats.PagesIn = len(pages)

	for _, path := range paths {
		dir, file, ok := splitPath(path)
		if !ok {
			return nil, fmt.Errorf("lift: page path %q has no directory (need context/page.html)", path)
		}
		ctxName := strings.ReplaceAll(dir, "/", ":")
		acc := accums[ctxName]
		if acc == nil {
			acc = &contextAccum{name: ctxName, members: map[string]*pageInfo{}}
			accums[ctxName] = acc
		}
		doc, err := xmldom.ParseString(pages[path])
		if err != nil {
			return nil, fmt.Errorf("lift: parsing %s: %w", path, err)
		}
		if file == "index" {
			result.Stats.HubPages++
			acc.hub = collectAnchors(doc.Root())
			continue
		}
		info, err := liftMemberPage(doc, file)
		if err != nil {
			return nil, fmt.Errorf("lift: %s: %w", path, err)
		}
		acc.members[file] = info
		acc.order = append(acc.order, file)
		result.Pages[path] = info.stripped
		result.Stats.AnchorsLifted += len(info.anchors)
	}

	var names []string
	for name := range accums {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		lc, err := accums[name].toContext()
		if err != nil {
			return nil, err
		}
		result.Contexts = append(result.Contexts, lc)
		result.Stats.AnchorsLifted += len(accums[name].hub)
	}
	result.Stats.Contexts = len(result.Contexts)
	result.Linkbase = navigation.BuildLinkbase(result.Contexts)
	return result, nil
}

// splitPath splits "ByAuthor/picasso/guitar.html" into
// ("ByAuthor/picasso", "guitar").
func splitPath(path string) (dir, file string, ok bool) {
	if !strings.HasSuffix(path, ".html") {
		return "", "", false
	}
	trimmed := strings.TrimSuffix(path, ".html")
	i := strings.LastIndexByte(trimmed, '/')
	if i < 0 {
		return "", "", false
	}
	return trimmed[:i], trimmed[i+1:], true
}

// collectAnchors gathers all <a> elements in document order, resolving
// their hrefs to node ids.
func collectAnchors(root *xmldom.Element) []anchor {
	var out []anchor
	root.Descendants(func(e *xmldom.Element) bool {
		if strings.EqualFold(e.Name.Local, "a") {
			out = append(out, anchor{
				label:  strings.TrimSpace(e.StringValue()),
				target: hrefToNode(e.AttrValue("href")),
			})
		}
		return true
	})
	return out
}

// hrefToNode maps a relative page href to a node id; "index.html" maps to
// the hub pseudo-node.
func hrefToNode(href string) string {
	href = strings.TrimSuffix(href, ".html")
	if i := strings.LastIndexByte(href, '/'); i >= 0 {
		href = href[i+1:]
	}
	if href == "index" {
		return navigation.HubID
	}
	return href
}

// liftMemberPage extracts the page's anchors and returns the page with
// navigation removed.
func liftMemberPage(doc *xmldom.Document, nodeID string) (*pageInfo, error) {
	info := &pageInfo{nodeID: nodeID}
	if h1, _ := firstNamed(doc.Root(), "h1"); h1 != nil {
		info.title = strings.TrimSpace(h1.StringValue())
	}
	if info.title == "" {
		info.title = nodeID
	}
	// Remove every anchor from its parent; what remains is content.
	var removals []struct {
		parent *xmldom.Element
		el     *xmldom.Element
	}
	doc.Root().Descendants(func(e *xmldom.Element) bool {
		if strings.EqualFold(e.Name.Local, "a") {
			info.anchors = append(info.anchors, anchor{
				label:  strings.TrimSpace(e.StringValue()),
				target: hrefToNode(e.AttrValue("href")),
			})
			removals = append(removals, struct {
				parent *xmldom.Element
				el     *xmldom.Element
			}{e.Parent(), e})
		}
		return true
	})
	for _, r := range removals {
		if r.parent != nil {
			r.parent.RemoveChild(r.el)
		}
	}
	info.stripped = doc.String()
	return info, nil
}

func firstNamed(root *xmldom.Element, local string) (*xmldom.Element, bool) {
	var found *xmldom.Element
	root.Descendants(func(e *xmldom.Element) bool {
		if strings.EqualFold(e.Name.Local, local) {
			found = e
			return false
		}
		return true
	})
	return found, found != nil
}

// toContext turns the accumulated pages into a recovered context,
// inferring the access structure from the anchor patterns.
func (acc *contextAccum) toContext() (*navigation.LinkbaseContext, error) {
	lc := &navigation.LinkbaseContext{
		Name:       acc.name,
		HasHub:     acc.hub != nil,
		NodeTitles: map[string]string{},
	}
	// Member order: hub listing when available, else discovery order.
	if acc.hub != nil {
		for _, a := range acc.hub {
			if a.target != navigation.HubID {
				lc.Order = append(lc.Order, a.target)
				lc.NodeTitles[a.target] = a.label
			}
		}
	} else {
		lc.Order = append(lc.Order, acc.order...)
	}
	for id, info := range acc.members {
		if lc.NodeTitles[id] == "" {
			lc.NodeTitles[id] = info.title
		}
	}

	// Hub edges.
	hasUp, hasTour := false, false
	for _, a := range acc.hub {
		lc.Edges = append(lc.Edges, navigation.Edge{
			From: navigation.HubID, To: a.target,
			Kind: navigation.EdgeMember, Label: a.label,
		})
	}
	// Member edges, classified by anchor label.
	for _, id := range orderedIDs(acc) {
		info := acc.members[id]
		if info == nil {
			continue // listed on the hub but page missing; tolerated
		}
		for _, a := range info.anchors {
			var kind navigation.EdgeKind
			switch strings.ToLower(a.label) {
			case "index", "up":
				kind = navigation.EdgeUp
				hasUp = true
			case "next":
				kind = navigation.EdgeNext
				hasTour = true
			case "previous", "prev":
				kind = navigation.EdgePrev
				hasTour = true
			default:
				return nil, fmt.Errorf("lift: context %s: unrecognized navigation anchor %q on %s",
					acc.name, a.label, id)
			}
			lc.Edges = append(lc.Edges, navigation.Edge{
				From: id, To: a.target, Kind: kind, Label: canonicalLabel(kind),
			})
		}
	}

	// Infer the access structure.
	switch {
	case lc.HasHub && hasTour:
		lc.AccessKind = "indexed-guided-tour"
	case lc.HasHub && hasUp:
		lc.AccessKind = "index"
	case lc.HasHub:
		lc.AccessKind = "menu"
	case hasTour:
		lc.AccessKind = "guided-tour"
	default:
		lc.AccessKind = "menu"
	}
	return lc, nil
}

func canonicalLabel(kind navigation.EdgeKind) string {
	switch kind {
	case navigation.EdgeUp:
		return "Index"
	case navigation.EdgeNext:
		return "Next"
	case navigation.EdgePrev:
		return "Previous"
	default:
		return string(kind)
	}
}

func orderedIDs(acc *contextAccum) []string {
	if len(acc.order) > 0 {
		return acc.order
	}
	var out []string
	for id := range acc.members {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
