package lift

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/museum"
	"repro/internal/navigation"
	"repro/internal/tangled"
)

func tangledSite(t *testing.T, access navigation.AccessStructure) (map[string]string, *navigation.ResolvedModel) {
	t.Helper()
	rm, err := museum.Model(access).Resolve(museum.PaperStore())
	if err != nil {
		t.Fatal(err)
	}
	return tangled.GenerateSite(rm), rm
}

// TestLiftRecoversIGTContexts lifts the tangled IGT site and checks the
// recovered navigation matches the model the site was generated from.
func TestLiftRecoversIGTContexts(t *testing.T) {
	site, rm := tangledSite(t, navigation.IndexedGuidedTour{})
	result, err := Site(site)
	if err != nil {
		t.Fatal(err)
	}
	if result.Stats.Contexts != 4 {
		t.Fatalf("contexts = %d, want 4", result.Stats.Contexts)
	}
	var picasso *navigation.LinkbaseContext
	for _, c := range result.Contexts {
		if c.Name == "ByAuthor:picasso" {
			picasso = c
		}
	}
	if picasso == nil {
		t.Fatal("ByAuthor:picasso not recovered")
	}
	if picasso.AccessKind != "indexed-guided-tour" {
		t.Errorf("inferred access = %q", picasso.AccessKind)
	}
	if !picasso.HasHub {
		t.Error("hub not recovered")
	}
	// Member order comes from the hub listing = model order.
	want := rm.Context("ByAuthor:picasso")
	for i, m := range want.Members {
		if picasso.Order[i] != m.ID() {
			t.Errorf("order[%d] = %s, want %s", i, picasso.Order[i], m.ID())
		}
	}
	// Edge multiset (from,to,kind) matches the model's.
	wantSet := edgeSet(want.Edges())
	gotSet := edgeSet(picasso.Edges)
	if len(wantSet) != len(gotSet) {
		t.Fatalf("edges = %d, want %d", len(gotSet), len(wantSet))
	}
	for k := range wantSet {
		if !gotSet[k] {
			t.Errorf("missing recovered edge %s", k)
		}
	}
	// Titles recovered from hub anchors.
	if picasso.NodeTitles["guitar"] != "Guitar" {
		t.Errorf("titles = %v", picasso.NodeTitles)
	}
}

func edgeSet(edges []navigation.Edge) map[string]bool {
	out := map[string]bool{}
	for _, e := range edges {
		out[e.From+"->"+e.To+":"+string(e.Kind)] = true
	}
	return out
}

func TestLiftStripsNavigationFromPages(t *testing.T) {
	site, _ := tangledSite(t, navigation.IndexedGuidedTour{})
	result, err := Site(site)
	if err != nil {
		t.Fatal(err)
	}
	// Member pages survive, hub pages are dropped (pure navigation).
	if len(result.Pages) != 8 {
		t.Fatalf("stripped pages = %d, want 8 members", len(result.Pages))
	}
	for path, html := range result.Pages {
		if strings.Contains(html, "<a ") {
			t.Errorf("%s still contains anchors:\n%s", path, html)
		}
	}
	guitar := result.Pages["ByAuthor/picasso/guitar.html"]
	if !strings.Contains(guitar, "<h1>Guitar</h1>") {
		t.Errorf("content lost from stripped page:\n%s", guitar)
	}
	if result.Stats.HubPages != 4 || result.Stats.PagesIn != 12 {
		t.Errorf("stats = %+v", result.Stats)
	}
	if result.Stats.AnchorsLifted == 0 {
		t.Error("no anchors lifted")
	}
}

// TestLiftLinkbaseRoundTrip: the lifted linkbase must parse back into the
// same contexts via the standard XLink pipeline.
func TestLiftLinkbaseRoundTrip(t *testing.T) {
	site, _ := tangledSite(t, navigation.Index{})
	result, err := Site(site)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := navigation.ParseLinkbase(result.Linkbase)
	if err != nil {
		t.Fatalf("lifted linkbase does not parse: %v", err)
	}
	if len(parsed) != len(result.Contexts) {
		t.Fatalf("round trip contexts = %d, want %d", len(parsed), len(result.Contexts))
	}
	sort.Slice(parsed, func(i, j int) bool { return parsed[i].Name < parsed[j].Name })
	for i, c := range parsed {
		if c.Name != result.Contexts[i].Name || c.AccessKind != result.Contexts[i].AccessKind {
			t.Errorf("context %d = %s/%s, want %s/%s",
				i, c.Name, c.AccessKind, result.Contexts[i].Name, result.Contexts[i].AccessKind)
		}
		if len(c.Edges) != len(result.Contexts[i].Edges) {
			t.Errorf("context %s edges = %d, want %d", c.Name, len(c.Edges), len(result.Contexts[i].Edges))
		}
	}
}

func TestLiftInfersAccessKinds(t *testing.T) {
	cases := []struct {
		access navigation.AccessStructure
		want   string
	}{
		{navigation.Index{}, "index"},
		{navigation.IndexedGuidedTour{}, "indexed-guided-tour"},
		{navigation.GuidedTour{}, "guided-tour"},
		{navigation.Menu{}, "menu"},
	}
	for _, tc := range cases {
		site, _ := tangledSite(t, tc.access)
		result, err := Site(site)
		if err != nil {
			t.Fatalf("%s: %v", tc.want, err)
		}
		for _, c := range result.Contexts {
			if c.Name == "ByAuthor:picasso" && c.AccessKind != tc.want {
				t.Errorf("inferred %q, want %q", c.AccessKind, tc.want)
			}
		}
	}
}

func TestLiftErrors(t *testing.T) {
	if _, err := Site(nil); err == nil {
		t.Error("empty site accepted")
	}
	if _, err := Site(map[string]string{"toplevel.html": "<html/>"}); err == nil {
		t.Error("directory-less page accepted")
	}
	if _, err := Site(map[string]string{"ctx/a.html": "not < xml"}); err == nil {
		t.Error("malformed page accepted")
	}
	// An anchor with an unrecognizable label cannot be classified.
	weird := map[string]string{
		"ctx/a.html": `<html><body><h1>A</h1><a href="b.html">Teleport</a></body></html>`,
	}
	if _, err := Site(weird); err == nil {
		t.Error("unclassifiable anchor accepted")
	}
}

// TestLiftThenWeaveEquivalence is the full migration: lift the tangled
// site, rebuild an app on the same data, and verify the woven pages carry
// the same navigation edges the tangled site had.
func TestLiftThenWeaveEquivalence(t *testing.T) {
	site, rm := tangledSite(t, navigation.IndexedGuidedTour{})
	result, err := Site(site)
	if err != nil {
		t.Fatal(err)
	}
	for _, rc := range rm.Contexts {
		var lifted *navigation.LinkbaseContext
		for _, c := range result.Contexts {
			if c.Name == rc.Name {
				lifted = c
			}
		}
		if lifted == nil {
			t.Errorf("context %s lost in lift", rc.Name)
			continue
		}
		want := edgeSet(rc.Edges())
		got := edgeSet(lifted.Edges)
		if len(want) != len(got) {
			t.Errorf("%s: %d edges, want %d", rc.Name, len(got), len(want))
		}
	}
}
