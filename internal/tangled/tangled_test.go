package tangled

import (
	"strings"
	"testing"

	"repro/internal/museum"
	"repro/internal/navigation"
)

func resolvedPaper(t *testing.T, access navigation.AccessStructure) *navigation.ResolvedModel {
	t.Helper()
	rm, err := museum.Model(access).Resolve(museum.PaperStore())
	if err != nil {
		t.Fatal(err)
	}
	return rm
}

func TestGenerateSiteShape(t *testing.T) {
	site := GenerateSite(resolvedPaper(t, navigation.Index{}))
	if len(site) != 12 { // 8 member pages + 4 hubs
		t.Fatalf("pages = %d, want 12", len(site))
	}
	guitar := site["ByAuthor/picasso/guitar.html"]
	if guitar == "" {
		t.Fatal("guitar page missing")
	}
	// Figure 3 shape: content + single Index anchor, relative hrefs.
	if !strings.Contains(guitar, "<h1>Guitar</h1>") {
		t.Errorf("content missing:\n%s", guitar)
	}
	if !strings.Contains(guitar, `<a href="index.html">Index</a>`) {
		t.Errorf("index anchor missing:\n%s", guitar)
	}
	if strings.Contains(guitar, "Next") || strings.Contains(guitar, "Previous") {
		t.Errorf("index page has tour anchors:\n%s", guitar)
	}
	hub := site["ByAuthor/picasso/index.html"]
	if !strings.Contains(hub, `<a href="guitar.html">Guitar</a>`) {
		t.Errorf("hub missing member anchor:\n%s", hub)
	}
}

func TestGenerateSiteIGT(t *testing.T) {
	site := GenerateSite(resolvedPaper(t, navigation.IndexedGuidedTour{}))
	guitar := site["ByAuthor/picasso/guitar.html"]
	// Figure 4 shape: Index + Previous + Next (year order puts guitar in
	// the middle).
	for _, want := range []string{
		`<a href="index.html">Index</a>`,
		`<a href="avignon.html">Previous</a>`,
		`<a href="guernica.html">Next</a>`,
	} {
		if !strings.Contains(guitar, want) {
			t.Errorf("IGT page missing %q:\n%s", want, guitar)
		}
	}
	// Ends of the open tour lack the corresponding anchor.
	first := site["ByAuthor/picasso/avignon.html"]
	if strings.Contains(first, "Previous") {
		t.Errorf("first member has Previous:\n%s", first)
	}
	last := site["ByAuthor/picasso/guernica.html"]
	if strings.Contains(last, "Next") {
		t.Errorf("last member has Next:\n%s", last)
	}
}

func TestGenerateSiteCircular(t *testing.T) {
	site := GenerateSite(resolvedPaper(t, navigation.IndexedGuidedTour{Circular: true}))
	first := site["ByAuthor/picasso/avignon.html"]
	if !strings.Contains(first, `<a href="guernica.html">Previous</a>`) {
		t.Errorf("circular first member should wrap Previous:\n%s", first)
	}
	last := site["ByAuthor/picasso/guernica.html"]
	if !strings.Contains(last, `<a href="avignon.html">Next</a>`) {
		t.Errorf("circular last member should wrap Next:\n%s", last)
	}
}

func TestGenerateSiteMenuAndTour(t *testing.T) {
	menu := GenerateSite(resolvedPaper(t, navigation.Menu{}))
	if strings.Contains(menu["ByAuthor/picasso/guitar.html"], "<a ") {
		t.Error("menu member page should have no anchors")
	}
	tour := GenerateSite(resolvedPaper(t, navigation.GuidedTour{}))
	if _, ok := tour["ByAuthor/picasso/index.html"]; ok {
		t.Error("guided tour should have no hub page")
	}
	if !strings.Contains(tour["ByAuthor/picasso/guitar.html"], "Next") {
		t.Error("tour member page missing Next")
	}
	if strings.Contains(tour["ByAuthor/picasso/guitar.html"], "Index") {
		t.Error("tour member page should have no Index anchor")
	}
}

func TestCompareSites(t *testing.T) {
	before := map[string]string{
		"a.html": "one\ntwo\n",
		"b.html": "stays\n",
		"c.html": "gone\n",
	}
	after := map[string]string{
		"a.html": "one\ntwo\nthree\n",
		"b.html": "stays\n",
		"d.html": "new\nfile\n",
	}
	cost := CompareSites(before, after)
	if cost.Files != 4 {
		t.Errorf("Files = %d", cost.Files)
	}
	if cost.FilesChanged != 1 || cost.FilesAdded != 1 || cost.FilesRemoved != 1 {
		t.Errorf("cost = %+v", cost)
	}
	if cost.LinesAdded != 1+2 || cost.LinesRemoved != 1 {
		t.Errorf("line edits = +%d/-%d", cost.LinesAdded, cost.LinesRemoved)
	}
	if cost.TotalLineEdits() != 4 {
		t.Errorf("TotalLineEdits = %d", cost.TotalLineEdits())
	}
	if !strings.Contains(cost.String(), "files=4") {
		t.Errorf("String = %q", cost.String())
	}
	// Identical sites cost nothing.
	zero := CompareSites(before, before)
	if zero.FilesChanged != 0 || zero.TotalLineEdits() != 0 {
		t.Errorf("identical sites cost %+v", zero)
	}
}

// TestMeasureAccessChange verifies the paper's central quantitative claim
// on the paper-sized museum: the tangled change touches every page of the
// affected family, the separated change is one line.
func TestMeasureAccessChange(t *testing.T) {
	result, err := MeasureAccessChange(museum.PaperStore(), museum.Model, "ByAuthor",
		navigation.Index{}, navigation.IndexedGuidedTour{})
	if err != nil {
		t.Fatal(err)
	}
	if result.Members != 4 { // picasso 3 + dali 1
		t.Errorf("members = %d", result.Members)
	}
	// Tangled: pages with both neighbours gain 2 lines, edge pages 1;
	// single-member contexts (dali) gain none. What matters: multiple
	// files changed, and line edits grow with members.
	if result.Tangled.FilesChanged < 3 {
		t.Errorf("tangled files changed = %d, want >= 3", result.Tangled.FilesChanged)
	}
	if result.Tangled.LinesAdded < 4 {
		t.Errorf("tangled lines added = %d, want >= 4", result.Tangled.LinesAdded)
	}
	// Separated: exactly one file, one line replaced.
	if result.Separated.FilesChanged != 1 {
		t.Errorf("separated files changed = %d, want 1", result.Separated.FilesChanged)
	}
	if result.Separated.LinesAdded != 1 || result.Separated.LinesRemoved != 1 {
		t.Errorf("separated line edits = +%d/-%d, want +1/-1",
			result.Separated.LinesAdded, result.Separated.LinesRemoved)
	}
	// The generated linkbase churns (machine artifact).
	if !result.GeneratedLinkbase.Changed() {
		t.Error("linkbase should differ between access structures")
	}
}

// TestChangeCostScaling verifies the asymptotic shape: tangled cost grows
// with the number of member nodes; separated cost stays constant.
func TestChangeCostScaling(t *testing.T) {
	var prevTangled int
	for _, size := range []int{5, 20, 60} {
		store := museum.Synthetic(museum.SyntheticSpec{
			Painters: 1, PaintingsPerPainter: size, Seed: 11,
		})
		result, err := MeasureAccessChange(store, museum.Model, "ByAuthor",
			navigation.Index{}, navigation.IndexedGuidedTour{})
		if err != nil {
			t.Fatal(err)
		}
		if result.Separated.TotalLineEdits() != 2 {
			t.Errorf("size %d: separated edits = %d, want 2", size, result.Separated.TotalLineEdits())
		}
		if result.Tangled.TotalLineEdits() <= prevTangled {
			t.Errorf("size %d: tangled edits %d did not grow from %d",
				size, result.Tangled.TotalLineEdits(), prevTangled)
		}
		prevTangled = result.Tangled.TotalLineEdits()
		// Every member page changes (all gain at least one anchor).
		if result.Tangled.FilesChanged != size {
			t.Errorf("size %d: tangled files changed = %d, want %d",
				size, result.Tangled.FilesChanged, size)
		}
	}
}

func TestMeasureAccessChangeErrors(t *testing.T) {
	store := museum.PaperStore()
	badBuild := func(access navigation.AccessStructure) *navigation.Model {
		m := navigation.NewModel()
		m.MustAddNodeClass(&navigation.NodeClass{Name: "P", Class: "Painting"})
		m.MustAddContext(&navigation.ContextDef{Name: "X", NodeClass: "P", GroupBy: "ghost", Access: access})
		return m
	}
	if _, err := MeasureAccessChange(store, badBuild, "X",
		navigation.Index{}, navigation.Menu{}); err == nil {
		t.Error("unresolvable model accepted")
	}
}
