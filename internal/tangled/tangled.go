// Package tangled implements the baseline the paper argues against: the
// hand-written web site of Figures 3–4 where navigation markup is embedded
// directly in every page. It also provides the change-cost analyzer that
// quantifies the paper's §5 claim — that a conceptually simple access-
// structure change (Index to Indexed Guided Tour) forces edits across
// every page of every affected context in the tangled implementation,
// while the separated implementation changes one declaration line.
package tangled

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/difflib"
	"repro/internal/navigation"
)

// GenerateSite produces the tangled site for a resolved navigational
// model: every page carries its navigation inline, exactly as a 2002
// hand-maintained HTML site would. Page paths match package core's so the
// two approaches are comparable page for page.
func GenerateSite(rm *navigation.ResolvedModel) map[string]string {
	pages := map[string]string{}
	for _, rc := range rm.Contexts {
		dir := strings.ReplaceAll(rc.Name, ":", "/")
		if rc.Def.Access.HasHub() {
			pages[dir+"/index.html"] = hubPage(rc)
		}
		for i, m := range rc.Members {
			pages[dir+"/"+m.ID()+".html"] = memberPage(rc, i)
		}
	}
	return pages
}

// hubPage hand-writes a context's index page.
func hubPage(rc *navigation.ResolvedContext) string {
	var sb strings.Builder
	sb.WriteString("<html>\n<head>\n")
	fmt.Fprintf(&sb, "<title>Index of %s</title>\n", rc.Name)
	sb.WriteString("</head>\n<body>\n")
	fmt.Fprintf(&sb, "<h1>Index of %s</h1>\n", rc.Name)
	sb.WriteString("<ul>\n")
	for _, m := range rc.Members {
		fmt.Fprintf(&sb, "<li><a href=\"%s.html\">%s</a></li>\n", m.ID(), htmlEscape(m.Title()))
	}
	sb.WriteString("</ul>\n</body>\n</html>\n")
	return sb.String()
}

// memberPage hand-writes one member page; this is where the tangling
// lives — the switch on the access structure is repeated in every page's
// generation, and its output is baked into the page text.
func memberPage(rc *navigation.ResolvedContext, idx int) string {
	m := rc.Members[idx]
	var sb strings.Builder
	sb.WriteString("<html>\n<head>\n")
	fmt.Fprintf(&sb, "<title>%s</title>\n", htmlEscape(m.Title()))
	sb.WriteString("</head>\n<body>\n")
	fmt.Fprintf(&sb, "<h1>%s</h1>\n", htmlEscape(m.Title()))
	sb.WriteString("<table class=\"attributes\">\n")
	for _, attr := range m.AttrNames() {
		fmt.Fprintf(&sb, "<tr><td>%s</td><td>%s</td></tr>\n", attr, htmlEscape(m.Attr(attr)))
	}
	sb.WriteString("</table>\n")

	// The embedded navigation: which anchors appear depends on the
	// access structure, re-decided in every page.
	access := rc.Def.Access
	circularNext := idx + 1
	circularPrev := idx - 1
	switch access.Kind() {
	case "index":
		sb.WriteString("<a href=\"index.html\">Index</a>\n")
	case "menu":
		// A menu adds no back links to member pages.
	case "guided-tour":
		writeTourAnchors(&sb, rc, idx, circularNext, circularPrev, isCircular(access))
	case "indexed-guided-tour":
		sb.WriteString("<a href=\"index.html\">Index</a>\n")
		writeTourAnchors(&sb, rc, idx, circularNext, circularPrev, isCircular(access))
	}
	sb.WriteString("</body>\n</html>\n")
	return sb.String()
}

func isCircular(a navigation.AccessStructure) bool {
	switch t := a.(type) {
	case navigation.GuidedTour:
		return t.Circular
	case navigation.IndexedGuidedTour:
		return t.Circular
	default:
		return false
	}
}

func writeTourAnchors(sb *strings.Builder, rc *navigation.ResolvedContext, idx, next, prev int, circular bool) {
	n := len(rc.Members)
	if prev < 0 && circular {
		prev = n - 1
	}
	if next >= n && circular {
		next = 0
	}
	if prev >= 0 && prev < n && prev != idx {
		fmt.Fprintf(sb, "<a href=\"%s.html\">Previous</a>\n", rc.Members[prev].ID())
	}
	if next < n && next >= 0 && next != idx {
		fmt.Fprintf(sb, "<a href=\"%s.html\">Next</a>\n", rc.Members[next].ID())
	}
}

func htmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// ChangeCost quantifies the difference between two versions of a site
// (or of any path->text artifact set).
type ChangeCost struct {
	// Files is the number of files present in either version.
	Files int
	// FilesChanged counts files whose content differs.
	FilesChanged int
	// FilesAdded and FilesRemoved count files present in only one side.
	FilesAdded   int
	FilesRemoved int
	// LinesAdded and LinesRemoved total the line-level edits.
	LinesAdded   int
	LinesRemoved int
}

// TotalLineEdits returns added plus removed lines.
func (c ChangeCost) TotalLineEdits() int { return c.LinesAdded + c.LinesRemoved }

// Changed reports whether any file differed.
func (c ChangeCost) Changed() bool {
	return c.FilesChanged+c.FilesAdded+c.FilesRemoved > 0
}

// String renders the cost as an experiment table row fragment.
func (c ChangeCost) String() string {
	return fmt.Sprintf("files=%d changed=%d (+%d/-%d lines)",
		c.Files, c.FilesChanged+c.FilesAdded+c.FilesRemoved, c.LinesAdded, c.LinesRemoved)
}

// CompareSites diffs two artifact sets and tallies the edit cost.
func CompareSites(before, after map[string]string) ChangeCost {
	var cost ChangeCost
	seen := map[string]bool{}
	for p := range before {
		seen[p] = true
	}
	for p := range after {
		seen[p] = true
	}
	paths := make([]string, 0, len(seen))
	for p := range seen {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	cost.Files = len(paths)
	for _, p := range paths {
		b, inBefore := before[p]
		a, inAfter := after[p]
		switch {
		case !inBefore:
			cost.FilesAdded++
			cost.LinesAdded += len(difflib.Lines(a))
		case !inAfter:
			cost.FilesRemoved++
			cost.LinesRemoved += len(difflib.Lines(b))
		case a != b:
			cost.FilesChanged++
			st := difflib.DiffStrings(b, a)
			cost.LinesAdded += st.Added
			cost.LinesRemoved += st.Removed
		}
	}
	return cost
}
