package tangled

import (
	"fmt"

	"repro/internal/conceptual"
	"repro/internal/navigation"
)

// AccessChange is the E8 experiment result for one dataset size: the edit
// cost of switching a context family's access structure, measured in the
// tangled implementation (every page is a hand-maintained artifact) and in
// the separated implementation (the hand-maintained artifact is the
// one-line navigation declaration; pages and links.xml are generated).
type AccessChange struct {
	// Members is the total number of member nodes across affected
	// contexts.
	Members int
	// Pages is the number of pages in the tangled site before the change.
	Pages int
	// Tangled is the edit cost over the hand-written pages.
	Tangled ChangeCost
	// Separated is the edit cost over the navigation declaration text.
	Separated ChangeCost
	// GeneratedLinkbase is the churn in the generated links.xml, shown
	// for completeness (it is machine-produced, not hand-edited).
	GeneratedLinkbase ChangeCost
}

// modelBuilder builds a fresh model with the given access structure; E8
// needs two models that differ only in the structure.
type modelBuilder func(access navigation.AccessStructure) *navigation.Model

// MeasureAccessChange measures the cost of switching family's access
// structure from `from` to `to` over the given store.
func MeasureAccessChange(store *conceptual.Store, build modelBuilder, family string,
	from, to navigation.AccessStructure) (AccessChange, error) {

	beforeModel := build(from)
	afterModel := build(to)
	// Restrict the change to one family: reset other families to `from`
	// in the after-model so only `family` differs.
	for _, c := range afterModel.Contexts() {
		if c.Name != family {
			c.Access = from
		}
	}

	beforeRM, err := beforeModel.Resolve(store)
	if err != nil {
		return AccessChange{}, fmt.Errorf("tangled: resolve before: %w", err)
	}
	afterRM, err := afterModel.Resolve(store)
	if err != nil {
		return AccessChange{}, fmt.Errorf("tangled: resolve after: %w", err)
	}

	var result AccessChange
	for _, rc := range beforeRM.Contexts {
		if rc.Def.Name == family {
			result.Members += len(rc.Members)
		}
	}

	beforeSite := GenerateSite(beforeRM)
	afterSite := GenerateSite(afterRM)
	result.Pages = len(beforeSite)
	result.Tangled = CompareSites(beforeSite, afterSite)

	result.Separated = CompareSites(
		map[string]string{"navigation.spec": navigation.SpecText(beforeModel)},
		map[string]string{"navigation.spec": navigation.SpecText(afterModel)},
	)

	result.GeneratedLinkbase = CompareSites(
		map[string]string{"links.xml": navigation.GenerateLinkbase(beforeRM).IndentedString()},
		map[string]string{"links.xml": navigation.GenerateLinkbase(afterRM).IndentedString()},
	)
	return result, nil
}
